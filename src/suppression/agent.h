#ifndef KALMANCAST_SUPPRESSION_AGENT_H_
#define KALMANCAST_SUPPRESSION_AGENT_H_

#include <memory>

#include "net/channel.h"
#include "suppression/predictor.h"

namespace kc {

namespace obs {
class SourceRecorder;
class SourceHealth;
}  // namespace obs

/// Configuration of a stream source's suppression behaviour.
struct AgentConfig {
  /// Precision bound delta: the source ships a correction whenever the
  /// shared predictor's error exceeds this (L-infinity across dimensions).
  double delta = 1.0;
  /// If > 0, send a HEARTBEAT after this many consecutive silent ticks so
  /// the server can distinguish suppression from source failure.
  int64_t heartbeat_every = 0;
  /// If > 0, every Nth correction is upgraded to a FULL_SYNC carrying the
  /// predictor's complete state (recovery hardening; E9 ablation).
  int64_t full_sync_every = 0;
  /// If true, *all* corrections ship full predictor state instead of the
  /// compact observation payload (E9 ablation: payload size vs robustness).
  bool always_full_state = false;
};

/// Per-agent counters.
struct AgentStats {
  int64_t ticks = 0;
  int64_t corrections = 0;
  int64_t full_syncs = 0;
  int64_t heartbeats = 0;
  int64_t suppressed = 0;
  /// Replica-requested resyncs answered (with a FULL_SYNC, or a fresh
  /// INIT when the replica never saw one). Each is also counted in
  /// full_syncs / corrections as appropriate.
  int64_t resyncs_served = 0;

  /// Fraction of post-init ticks that required no correction.
  double SuppressionRatio() const {
    int64_t decisions = corrections + full_syncs + suppressed;
    if (decisions <= 0) return 0.0;
    return static_cast<double>(suppressed) / static_cast<double>(decisions);
  }
};

/// The client (source) half of the precision-bounded suppression protocol.
///
/// Owns the source-side predictor replica. Offer() is called once per
/// stream tick with the sensor's measurement; the agent ticks the
/// predictor, checks the precision contract, and ships a correction over
/// the channel only on violation — the message suppression that is the
/// whole point of the reproduced paper.
class SourceAgent {
 public:
  /// `channel` must outlive the agent.
  SourceAgent(int32_t source_id, std::unique_ptr<Predictor> predictor,
              AgentConfig config, Channel* channel);

  /// Processes one measurement. The first call emits INIT; later calls
  /// emit at most one CORRECTION/FULL_SYNC (or HEARTBEAT).
  Status Offer(const Reading& measured);

  /// Applies a server-originated control message: SET_BOUND (budget
  /// reallocation; the new bound takes effect from the next Offer and the
  /// server learns it back with the next data message) or RESYNC_REQUEST
  /// (the replica suspects desync; the next Offer answers with a
  /// FULL_SYNC, or a fresh INIT if the replica reported itself
  /// uninitialized).
  Status OnControl(const Message& msg);

  /// Current precision bound.
  double delta() const { return config_.delta; }
  /// Adjusts the bound (used by BudgetController in resource-constrained
  /// mode). Takes effect from the next Offer; the server learns the new
  /// bound with the next message.
  void set_delta(double delta) { config_.delta = delta; }

  int32_t source_id() const { return source_id_; }
  const AgentStats& stats() const { return stats_; }
  const Predictor& predictor() const { return *predictor_; }
  bool initialized() const { return initialized_; }

  /// The source-side predictor's current prediction (mirrors the server's
  /// view on a lossless channel).
  Vector PredictedValue() const { return predictor_->Predict(); }

  /// The value the precision contract protects (raw measurement for
  /// memoryless policies; the client's filtered estimate for the
  /// state-sync Kalman policy).
  Vector ContractTarget() const { return predictor_->Target(); }

  /// Registers kc.agent.* counters and the kc.agent.innovation histogram
  /// (per-decision |target - prediction|) on the arena, mirrors every
  /// suppression decision onto them, and forwards the binding to the
  /// owned predictor. Pass nullptr to unbind.
  void BindMetrics(obs::MetricRegistry* registry);

  /// Attaches the flight recorder ring and/or health watchdog entry for
  /// this source (either may be nullptr). The recorder retains every
  /// protocol decision (INIT/suppress/correction/heartbeat/gate fires/
  /// resyncs served); the watchdog is fed one tick, one NIS sample, and
  /// one decision per Offer. Both are observation-only: binding them
  /// never changes what goes on the wire.
  void BindObservability(obs::SourceRecorder* recorder,
                         obs::SourceHealth* health);

 private:
  /// Arena handles, cached at bind time; null until BindMetrics.
  struct Metrics {
    obs::Counter* decisions = nullptr;
    obs::Counter* suppressed = nullptr;
    obs::Counter* corrections = nullptr;
    obs::Counter* full_syncs = nullptr;
    obs::Counter* heartbeats = nullptr;
    obs::Counter* resyncs_served = nullptr;
    obs::Histogram* innovation = nullptr;
  };

  Status SendInit(const Reading& measured);
  Status SendCorrection(const Reading& measured, bool full_state);
  /// Answers a pending RESYNC_REQUEST with the strongest sync the
  /// predictor supports (FULL_SYNC, else a forced CORRECTION).
  Status ServeResync(const Reading& measured);

  int32_t source_id_;
  std::unique_ptr<Predictor> predictor_;
  AgentConfig config_;
  Channel* channel_;
  AgentStats stats_;
  Metrics metrics_;
  obs::SourceRecorder* recorder_ = nullptr;  ///< Optional black box.
  obs::SourceHealth* health_ = nullptr;      ///< Optional watchdog feed.
  /// Predictor gate fires already logged to the recorder.
  int64_t seen_outliers_ = 0;
  bool initialized_ = false;
  int64_t silent_ticks_ = 0;
  /// Dense per-link message counter stamped on every uplink send; the
  /// replica detects losses as gaps in this sequence.
  int64_t next_wire_seq_ = 0;
  /// Set by OnControl(RESYNC_REQUEST); served at the next Offer.
  bool resync_pending_ = false;
  bool reinit_pending_ = false;
};

}  // namespace kc

#endif  // KALMANCAST_SUPPRESSION_AGENT_H_
