#include "query/parser.h"

#include <cmath>

#include "common/strings.h"
#include "query/lexer.h"

namespace kc {

namespace {

/// Recursive-descent parser over the token list.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<QuerySpec> Parse() {
    QuerySpec spec;
    KC_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    auto kind = ParseAggregate();
    if (!kind.ok()) return kind.status();
    spec.kind = *kind;

    KC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    while (true) {
      auto source = ParseSource();
      if (!source.ok()) return source.status();
      spec.sources.push_back(*source);
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    KC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));

    // Optional clauses, any order.
    while (Peek().kind == TokenKind::kKeyword) {
      const std::string clause = Peek().text;
      Advance();
      if (clause == "WHEN") {
        TokenKind dir = Peek().kind;
        if (dir != TokenKind::kGreater && dir != TokenKind::kLess) {
          return Error("WHEN requires '>' or '<'");
        }
        Advance();
        auto value = ExpectNumber();
        if (!value.ok()) return value.status();
        spec.threshold = *value;
        spec.above = dir == TokenKind::kGreater;
      } else if (clause == "WITHIN") {
        auto value = ExpectNumber();
        if (!value.ok()) return value.status();
        spec.within = *value;
      } else if (clause == "EVERY") {
        auto value = ExpectNumber();
        if (!value.ok()) return value.status();
        if (*value <= 0.0 || *value != std::floor(*value)) {
          return Error("EVERY requires a positive integer");
        }
        spec.every = static_cast<int64_t>(*value);
      } else if (clause == "FROM") {
        auto from = ExpectNumber();
        if (!from.ok()) return from.status();
        KC_RETURN_IF_ERROR(ExpectKeyword("TO"));
        auto to = ExpectNumber();
        if (!to.ok()) return to.status();
        spec.from_time = *from;
        spec.to_time = *to;
      } else if (clause == "LAST") {
        auto value = ExpectNumber();
        if (!value.ok()) return value.status();
        if (*value <= 0.0 || *value != std::floor(*value)) {
          return Error("LAST requires a positive integer");
        }
        spec.last_ticks = static_cast<int64_t>(*value);
      } else {
        return Error("unexpected keyword " + clause);
      }
    }

    KC_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    KC_RETURN_IF_ERROR(spec.Validate());
    return spec;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("%s (at offset %zu)", message.c_str(), Peek().offset));
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, found %s", TokenKindName(kind),
                             TokenKindName(Peek().kind)));
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (Peek().kind != TokenKind::kKeyword || Peek().text != keyword) {
      return Error("expected " + keyword);
    }
    Advance();
    return Status::Ok();
  }

  StatusOr<double> ExpectNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected a number");
    }
    double value = Peek().number;
    Advance();
    return value;
  }

  StatusOr<AggregateKind> ParseAggregate() {
    if (Peek().kind != TokenKind::kKeyword) {
      return Error("expected an aggregate (VALUE/SUM/AVG/MIN/MAX)");
    }
    const std::string& word = Peek().text;
    AggregateKind kind;
    if (word == "VALUE") {
      kind = AggregateKind::kValue;
    } else if (word == "SUM") {
      kind = AggregateKind::kSum;
    } else if (word == "AVG") {
      kind = AggregateKind::kAvg;
    } else if (word == "MIN") {
      kind = AggregateKind::kMin;
    } else if (word == "MAX") {
      kind = AggregateKind::kMax;
    } else {
      return Error("unknown aggregate " + word);
    }
    Advance();
    return kind;
  }

  StatusOr<int32_t> ParseSource() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kNumber) {
      if (token.number < 0.0 || token.number != std::floor(token.number)) {
        return Error("source id must be a non-negative integer");
      }
      auto id = static_cast<int32_t>(token.number);
      Advance();
      return id;
    }
    if (token.kind == TokenKind::kIdent) {
      std::string_view text = token.text;
      if ((text.front() == 's' || text.front() == 'S') && text.size() > 1) {
        auto id = ParseInt64(text.substr(1));
        if (id.ok() && *id >= 0) {
          Advance();
          return static_cast<int32_t>(*id);
        }
      }
      return Error("source must look like s<N>, got '" + token.text + "'");
    }
    return Error("expected a source");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<QuerySpec> ParseQuery(std::string_view input) {
  auto tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace kc
