#include "query/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace kc {

namespace {

const char* const kKeywords[] = {"SELECT", "VALUE",  "SUM",   "AVG",
                                 "MIN",    "MAX",    "WHEN",  "WITHIN",
                                 "EVERY",  "FROM",   "TO",    "LAST"};

bool IsKeyword(std::string_view upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kGreater:
      return "'>'";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "unknown";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == '(') {
      token.kind = TokenKind::kLParen;
      token.text = "(";
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      token.text = ")";
      ++i;
    } else if (c == ',') {
      token.kind = TokenKind::kComma;
      token.text = ",";
      ++i;
    } else if (c == '>') {
      token.kind = TokenKind::kGreater;
      token.text = ">";
      ++i;
    } else if (c == '<') {
      token.kind = TokenKind::kLess;
      token.text = "<";
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
               c == '-' || c == '+') {
      size_t start = i;
      if (c == '-' || c == '+') ++i;
      bool saw_digit = false;
      bool saw_dot = false;
      bool saw_exp = false;
      while (i < input.size()) {
        char d = input[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          saw_digit = true;
          ++i;
        } else if (d == '.' && !saw_dot && !saw_exp) {
          saw_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && saw_digit && !saw_exp) {
          saw_exp = true;
          ++i;
          if (i < input.size() && (input[i] == '-' || input[i] == '+')) ++i;
        } else {
          break;
        }
      }
      token.text = std::string(input.substr(start, i - start));
      auto value = ParseDouble(token.text);
      if (!saw_digit || !value.ok()) {
        return Status::InvalidArgument(
            StrFormat("bad number '%s' at offset %zu", token.text.c_str(),
                      start));
      }
      token.kind = TokenKind::kNumber;
      token.number = *value;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdent;
        token.text = word;
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    out.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = input.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace kc
