#ifndef KALMANCAST_QUERY_LEXER_H_
#define KALMANCAST_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kc {

/// Token kinds of the continuous-query language.
enum class TokenKind {
  kKeyword,  ///< SELECT, VALUE, SUM, AVG, MIN, MAX, WHEN, WITHIN, EVERY.
  kIdent,    ///< Source names like "s12".
  kNumber,   ///< Integer or decimal literal.
  kLParen,
  kRParen,
  kComma,
  kGreater,
  kLess,
  kEnd,
};

const char* TokenKindName(TokenKind kind);

/// One lexed token. Keywords are uppercased in `text`; numbers keep their
/// literal text and carry the parsed value.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;  ///< Byte offset in the input (for error messages).
};

/// Tokenizes a query string. Fails on any character outside the language.
StatusOr<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace kc

#endif  // KALMANCAST_QUERY_LEXER_H_
