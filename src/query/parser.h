#ifndef KALMANCAST_QUERY_PARSER_H_
#define KALMANCAST_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "server/query.h"

namespace kc {

/// Parses the kalmancast continuous-query language into a QuerySpec.
///
/// Grammar (keywords case-insensitive; sources are "s<N>" or bare ids):
///
///   query   := SELECT agg '(' source (',' source)* ')'
///              [FROM number TO number] [WHEN ('>'|'<') number]
///              [WITHIN number] [EVERY integer]
///   agg     := VALUE | SUM | AVG | MIN | MAX
///
/// FROM..TO makes the query historical: the aggregate runs over the
/// server's archived per-tick views of a single source (see
/// StreamServer::EnableArchiving).
///
/// Examples:
///   SELECT VALUE(s3) WITHIN 0.5
///   SELECT AVG(s0, s1, s2) WITHIN 1.0 EVERY 10
///   SELECT MAX(s0, s1) WHEN > 40 WITHIN 0.25
///   SELECT AVG(s2) FROM 100 TO 200
StatusOr<QuerySpec> ParseQuery(std::string_view input);

}  // namespace kc

#endif  // KALMANCAST_QUERY_PARSER_H_
