#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace kc {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace kc
