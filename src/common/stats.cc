#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace kc {

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  sumsq_ += x * x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double nn = static_cast<double>(n);
  double mean = mean_ + delta * nb / nn;
  m2_ = m2_ + other.m2_ + delta * delta * na * nb / nn;
  mean_ = mean;
  sumsq_ += other.sumsq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::rms() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(sumsq_ / static_cast<double>(count_));
}

std::string RunningStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(std::max(hi, lo + 1e-12)), counts_(std::max<size_t>(bins, 1), 0) {
  width_ = (hi_ - lo_) / static_cast<double>(counts_.size());
}

void Histogram::Add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // Float edge guard.
  ++counts_[idx];
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    auto bar = static_cast<size_t>(static_cast<double>(counts_[i]) /
                                   static_cast<double>(peak) *
                                   static_cast<double>(max_width));
    os << "[" << bin_lo(i) << ", " << bin_lo(i) + width_ << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace kc
