#ifndef KALMANCAST_COMMON_LOGGING_H_
#define KALMANCAST_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace kc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default kWarning so library
/// users are not spammed; examples raise it to kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define KC_LOG(level)                                                  \
  ::kc::internal::LogMessage(::kc::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

}  // namespace kc

#endif  // KALMANCAST_COMMON_LOGGING_H_
