#ifndef KALMANCAST_COMMON_LOGGING_H_
#define KALMANCAST_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace kc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted (default kWarning so library users are
/// not spammed; examples raise it to kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for emitted log lines. `line` is the fully formatted
/// record ("I file.cc:42] message"), without a trailing newline. Sinks
/// may be called from any thread; calls are serialized by the logger.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Installs a sink replacing the default stderr writer (tests capture
/// lines this way; exporters can forward them). Passing nullptr restores
/// stderr. The previous sink is returned so callers can chain or restore.
LogSink SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define KC_LOG(level)                                                  \
  ::kc::internal::LogMessage(::kc::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

/// Rate-limited logging: emits the 1st, (n+1)th, (2n+1)th... execution of
/// this call site (per-site counter, thread-safe). Usage mirrors KC_LOG:
///
///   KC_LOG_EVERY_N(Warning, 100) << "dropped " << count << " messages";
///
/// The counter advances even when the line is below the level threshold,
/// so enabling a lower level mid-run keeps the same cadence.
///
/// The inverted if/else makes the macro a single, else-safe statement: a
/// surrounding `if (...) KC_LOG_EVERY_N(...) << ...; else ...` binds the
/// else to the outer if, not to the macro's internals.
#define KC_LOG_EVERY_N(level, n)                                         \
  if (!([]() -> bool {                                                   \
        static ::std::atomic<int64_t> kc_log_site_count{0};              \
        return kc_log_site_count.fetch_add(                              \
                   1, ::std::memory_order_relaxed) %                     \
                   (n) ==                                                \
               0;                                                        \
      })()) {                                                            \
  } else                                                                 \
    KC_LOG(level)

}  // namespace kc

#endif  // KALMANCAST_COMMON_LOGGING_H_
