#ifndef KALMANCAST_COMMON_STRINGS_H_
#define KALMANCAST_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kc {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Uppercases ASCII letters.
std::string ToUpper(std::string_view s);

/// Parses a double, rejecting trailing garbage and empty input.
StatusOr<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer, rejecting trailing garbage and empty
/// input.
StatusOr<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace kc

#endif  // KALMANCAST_COMMON_STRINGS_H_
