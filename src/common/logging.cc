#include "common/logging.h"

#include <cstring>
#include <iostream>
#include <mutex>
#include <utility>

namespace kc {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

/// Guards the sink pointer and serializes sink invocations, so a sink
/// swapped mid-run never races an in-flight emission.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& Sink() {
  static LogSink* sink = new LogSink();  // Empty = default stderr writer.
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink previous = std::move(Sink());
  Sink() = std::move(sink);
  return previous;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_min_level.load()) return;
  std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (Sink()) {
    Sink()(level_, line);
  } else {
    std::cerr << line << "\n";
  }
}

}  // namespace internal

}  // namespace kc
