#include "common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace kc {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_min_level.load()) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal

}  // namespace kc
