#ifndef KALMANCAST_COMMON_CHISQ_H_
#define KALMANCAST_COMMON_CHISQ_H_

#include <cstddef>

namespace kc {

/// Upper-tail chi-squared utilities used for innovation gating: a Kalman
/// filter's NIS is chi-squared with obs_dim degrees of freedom when the
/// model matches reality, so readings whose NIS exceeds a high quantile
/// are flagged as outliers instead of being trusted.

/// CDF of the chi-squared distribution with k degrees of freedom at x
/// (k >= 1, x >= 0). Accurate to ~1e-10 over the ranges gating uses.
double ChiSquaredCdf(double x, size_t k);

/// Quantile (inverse CDF): smallest x with CDF(x) >= p, for p in (0, 1).
/// Solved by bisection on the CDF; intended for setup-time gate
/// computation, not per-sample work.
double ChiSquaredQuantile(double p, size_t k);

}  // namespace kc

#endif  // KALMANCAST_COMMON_CHISQ_H_
