#ifndef KALMANCAST_COMMON_RNG_H_
#define KALMANCAST_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace kc {

/// Deterministic random number generator used throughout kalmancast.
///
/// All stochastic components (stream generators, noise injection, lossy
/// channels) draw from an Rng seeded explicitly, so every experiment in the
/// benchmark suite is exactly reproducible. Wraps std::mt19937_64 and adds
/// the distributions the library needs.
class Rng {
 public:
  /// Creates a generator with the given seed. The same seed always produces
  /// the same sequence of draws (for a fixed call sequence).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Reseeds the generator, restarting its sequence.
  void Seed(uint64_t seed) { engine_.seed(seed); }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Exponential draw with the given rate (mean = 1/rate).
  double Exponential(double rate);

  /// Pareto draw with scale xm > 0 and shape alpha > 0 (heavy-tailed;
  /// used for bursty network-traffic generators).
  double Pareto(double xm, double alpha);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Vector of n i.i.d. Gaussian draws.
  std::vector<double> GaussianVector(size_t n, double mean = 0.0,
                                     double stddev = 1.0);

  /// Direct access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kc

#endif  // KALMANCAST_COMMON_RNG_H_
