#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace kc {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

double Rng::Pareto(double xm, double alpha) {
  // Inverse-CDF sampling: X = xm / U^(1/alpha), U ~ Uniform(0, 1].
  double u = 1.0 - Uniform(0.0, 1.0);  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::GaussianVector(size_t n, double mean, double stddev) {
  std::vector<double> out(n);
  for (auto& v : out) v = Gaussian(mean, stddev);
  return out;
}

}  // namespace kc
