#ifndef KALMANCAST_COMMON_STATS_H_
#define KALMANCAST_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace kc {

/// Single-pass accumulator of count / mean / variance / min / max using
/// Welford's numerically stable update. Used for stream summaries, error
/// accounting in the suppression layer, and variance-proportional budget
/// allocation in the server.
class RunningStats {
 public:
  RunningStats() = default;

  /// Incorporates one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel/chunked summaries).
  void Merge(const RunningStats& other);

  /// Discards all observations.
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n). Zero for fewer than 2 samples.
  double variance() const;
  /// Sample variance (divides by n-1). Zero for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * static_cast<double>(count_) : 0.0; }

  /// Root mean square of the observations (useful when observations are
  /// errors: RMSE).
  double rms() const;

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;       // Sum of squared deviations from the mean.
  double sumsq_ = 0.0;    // Sum of squares (for rms()).
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi) with overflow/underflow buckets.
/// Used by benches to report error distributions.
class Histogram {
 public:
  /// Creates `bins` equal-width buckets spanning [lo, hi). Requires
  /// lo < hi and bins >= 1 (enforced by clamping).
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  size_t num_bins() const { return counts_.size(); }
  int64_t bin_count(size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bin i.
  double bin_lo(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bin. Returns lo/hi bounds for out-of-range mass.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering, for example binaries.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t count_ = 0;
};

/// Exact quantile over a buffered sample (the experiment harness keeps whole
/// error vectors; sizes are laptop-scale). q in [0,1]; empty input yields 0.
double ExactQuantile(std::vector<double> values, double q);

}  // namespace kc

#endif  // KALMANCAST_COMMON_STATS_H_
