#ifndef KALMANCAST_COMMON_STATUS_H_
#define KALMANCAST_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace kc {

/// Canonical error codes, modeled after absl::StatusCode. Only the codes
/// the library actually produces are defined.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDataLoss = 8,
};

/// Returns a stable human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result carrier. kalmancast does not throw
/// exceptions across API boundaries; fallible operations return Status (or
/// StatusOr<T> when they also produce a value).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code with a
  /// message is allowed but the message is ignored by ok().
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Holds either a value of type T or an error Status. Accessing the value of
/// a non-OK StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit from error status: allows `return Status::NotFound(...)`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define KC_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::kc::Status kc_status_ = (expr);             \
    if (!kc_status_.ok()) return kc_status_;      \
  } while (0)

}  // namespace kc

#endif  // KALMANCAST_COMMON_STATUS_H_
