#include "common/chisq.h"

#include <cassert>
#include <cmath>

namespace kc {

namespace {

/// Regularized lower incomplete gamma P(a, x) via series (x < a+1) or
/// continued fraction (x >= a+1); standard Numerical-Recipes-style forms.
double GammaP(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a, x); P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e308;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

}  // namespace

double ChiSquaredCdf(double x, size_t k) {
  assert(k >= 1);
  if (x <= 0.0) return 0.0;
  return GammaP(static_cast<double>(k) / 2.0, x / 2.0);
}

double ChiSquaredQuantile(double p, size_t k) {
  assert(p > 0.0 && p < 1.0 && k >= 1);
  double lo = 0.0;
  double hi = 1.0;
  while (ChiSquaredCdf(hi, k) < p) hi *= 2.0;  // Bracket.
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (ChiSquaredCdf(mid, k) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace kc
