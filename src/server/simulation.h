#ifndef KALMANCAST_SERVER_SIMULATION_H_
#define KALMANCAST_SERVER_SIMULATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "net/channel.h"
#include "obs/health.h"
#include "obs/recorder.h"
#include "server/server.h"
#include "streams/generator.h"
#include "suppression/agent.h"
#include "suppression/budget.h"
#include "suppression/replica.h"

namespace kc {

/// Configuration for a single source-to-server link experiment.
struct LinkConfig {
  size_t ticks = 10000;
  /// Precision bound (overrides agent.delta).
  double delta = 1.0;
  uint64_t seed = 1;
  AgentConfig agent;
  Channel::Config channel;
  /// Server -> source control downlink (RESYNC_REQUESTs travel here; the
  /// agent's answers ride the uplink). Lossy/faulty configs are honoured
  /// just like the uplink's.
  Channel::Config control_channel;
  /// Loss-tolerant replica recovery (disabled by default: the lossless
  /// lockstep protocol, exactly as before).
  ReplicaRecoveryConfig recovery;
  /// When set, run in resource-constrained mode: the controller steers
  /// delta to hit the message budget instead of holding it fixed.
  std::optional<BudgetConfig> budget;
  /// When > 0, both ends of the link record their protocol decisions into
  /// a shared per-source flight-recorder ring of this capacity; the dump
  /// lands in LinkReport::black_box.
  size_t flight_recorder_capacity = 0;
  /// When true, the filter-health watchdog runs over the link and its
  /// verdict lands in LinkReport::{health,health_summary}.
  bool health = false;
  obs::HealthConfig health_config;
};

/// Everything the experiment tables report about one link run.
struct LinkReport {
  std::string policy;
  std::string stream;
  double delta = 0.0;  ///< Configured (initial) precision bound.
  int64_t ticks = 0;

  int64_t messages = 0;  ///< Data messages (INIT + corrections + syncs).
  int64_t bytes = 0;
  double messages_per_tick = 0.0;

  /// |server view - contract target| each tick; the protocol guarantee.
  RunningStats err_vs_target;
  /// |server view - raw measurement| each tick.
  RunningStats err_vs_measured;
  /// |server view - noiseless ground truth| each tick — the scientifically
  /// interesting accuracy (only differs from measured under sensor noise).
  RunningStats err_vs_truth;
  /// Ticks where err_vs_target exceeded the in-force delta (should be 0
  /// for contract-exact policies on a lossless channel).
  int64_t contract_violations = 0;

  AgentStats agent;
  NetworkStats net;
  /// Control-downlink traffic (RESYNC_REQUESTs; empty when recovery off).
  NetworkStats control_net;
  /// Recovery-protocol activity (all zero when recovery is disabled).
  int64_t gaps = 0;               ///< Wire-seq gap events at the replica.
  int64_t resyncs_requested = 0;  ///< RESYNC_REQUESTs the replica emitted.
  int64_t resyncs_served = 0;     ///< Resyncs the agent answered.
  int64_t degraded_ticks = 0;     ///< Ticks spent desynced (quarantined).
  /// delta in force at the end (differs from `delta` in budget mode).
  double final_delta = 0.0;

  /// Watchdog verdict at end of run (kOk unless LinkConfig::health).
  obs::HealthState health = obs::HealthState::kOk;
  /// One-line watchdog summary (empty unless LinkConfig::health).
  std::string health_summary;
  /// Flight-recorder dump of the run's tail (empty unless
  /// LinkConfig::flight_recorder_capacity > 0).
  std::string black_box;

  std::string ToString() const;
};

/// Runs one generator against one suppression policy for config.ticks and
/// reports communication and error statistics. The generator is
/// Reset(config.seed) first; `prototype` is cloned for both ends of the
/// link, so the caller's object is untouched.
LinkReport RunLink(StreamGenerator& generator, const Predictor& prototype,
                   const LinkConfig& config);

/// As RunLink, but additionally appends the per-tick (server view, truth,
/// in-force delta) triples to `trajectory` — used by the figure-style
/// benches that print time series.
struct TrajectoryPoint {
  double time = 0.0;
  double truth = 0.0;
  double measured = 0.0;
  double server_view = 0.0;
  double delta = 0.0;
  bool message_sent = false;
  int64_t cumulative_messages = 0;
};

LinkReport RunLinkTraced(StreamGenerator& generator, const Predictor& prototype,
                         const LinkConfig& config,
                         std::vector<TrajectoryPoint>* trajectory);

/// Deterministic per-source seed derivation shared by Fleet and the
/// sharded multi-threaded harness (src/fleet/sharded_fleet.h). Every
/// stochastic component of a simulated source — its generator, its uplink
/// channel, its control downlink — draws from an RNG seeded purely from
/// (fleet seed, source id). Because no seed depends on shard assignment
/// or thread count, a fleet's trajectory is bit-identical for any
/// --threads/--shards configuration: the determinism contract the
/// scalability experiments rely on.
inline uint64_t SourceGeneratorSeed(uint64_t fleet_seed, int32_t id) {
  return fleet_seed + static_cast<uint64_t>(id) * 7919;
}
inline uint64_t SourceUplinkSeed(uint64_t fleet_seed, int32_t id) {
  return fleet_seed ^ (static_cast<uint64_t>(id) << 17);
}
inline uint64_t SourceControlSeed(uint64_t fleet_seed, int32_t id) {
  return fleet_seed ^ (static_cast<uint64_t>(id) << 29);
}

/// A multi-source deployment: N generator+agent pairs feeding one
/// StreamServer over per-source channels. Drives the aggregate-query and
/// scalability experiments (E7, E8) and the example applications.
/// Single-threaded; see kc::ShardedFleet (src/fleet) for the sharded
/// multi-threaded equivalent with identical (bit-for-bit) results.
class Fleet {
 public:
  struct Config {
    uint64_t seed = 1;
    AgentConfig agent_base;  ///< delta is overridden per source.
    Channel::Config channel;
    /// Server -> source downlink; the seed is overridden per source.
    Channel::Config control_channel;
    /// Loss-tolerant replica recovery, applied server-wide when enabled.
    ReplicaRecoveryConfig recovery;
  };

  Fleet();
  explicit Fleet(Config config);

  /// Adds a source; returns its id (sequential from 0). The predictor
  /// prototype is cloned for the agent and the server replica; the
  /// generator is Reset with a per-source seed derived from config.seed.
  int32_t AddSource(std::unique_ptr<StreamGenerator> generator,
                    std::unique_ptr<Predictor> predictor, double delta);

  /// Advances the whole system one stream tick.
  Status Step();

  /// Runs `ticks` steps, stopping on the first error.
  Status Run(size_t ticks);

  StreamServer& server() { return server_; }
  const StreamServer& server() const { return server_; }

  size_t num_sources() const { return sources_.size(); }
  int64_t ticks() const { return ticks_; }

  const SourceAgent& agent(int32_t id) const { return *sources_[id]->agent; }
  /// Changes a source's precision bound (adaptive allocation).
  void SetDelta(int32_t id, double delta) {
    sources_[id]->agent->set_delta(delta);
  }

  /// Ground truth of the source's latest sample (scalar streams).
  double TruthOf(int32_t id) const {
    return sources_[id]->last_sample.truth.scalar();
  }
  const Sample& LastSampleOf(int32_t id) const {
    return sources_[id]->last_sample;
  }
  /// Data messages this source has sent so far.
  int64_t MessagesOf(int32_t id) const;

  int64_t TotalMessages() const;
  int64_t TotalBytes() const;
  /// Server-to-source control traffic (SET_BOUND pushes).
  int64_t TotalControlMessages() const;

 private:
  struct SourceSlot {
    std::unique_ptr<StreamGenerator> generator;
    std::unique_ptr<Channel> channel;          ///< Uplink: source -> server.
    std::unique_ptr<Channel> control_channel;  ///< Downlink: server -> source.
    std::unique_ptr<SourceAgent> agent;
    Sample last_sample;
  };

  Config config_;
  StreamServer server_;
  std::vector<std::unique_ptr<SourceSlot>> sources_;
  int64_t ticks_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_SERVER_SIMULATION_H_
