#ifndef KALMANCAST_SERVER_REPORT_H_
#define KALMANCAST_SERVER_REPORT_H_

#include <string>

#include "server/server.h"

namespace kc {

/// Renders a human-readable status report of a stream server: per-source
/// bounded views, liveness, policies, query results, and archive depth.
/// This is the operator-facing "what does the server believe right now"
/// view used by the cql_shell example and useful in logs.
std::string DescribeServer(const StreamServer& server);

}  // namespace kc

#endif  // KALMANCAST_SERVER_REPORT_H_
