#include "server/volatility.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace kc {

StatusOr<double> VolatilityEstimator::FromArchive(const TickArchive& archive,
                                                  size_t window) {
  if (archive.size() < 3) {
    return Status::FailedPrecondition("not enough archived points");
  }
  double newest = archive.newest_time();
  double oldest_wanted = newest - static_cast<double>(window);
  std::vector<TickArchive::Point> points =
      archive.Range(oldest_wanted, newest);
  if (points.size() < 3) {
    return Status::FailedPrecondition("not enough points in window");
  }
  RunningStats diffs;
  for (size_t i = 1; i < points.size(); ++i) {
    double dt = points[i].time - points[i - 1].time;
    if (dt <= 0.0) continue;
    diffs.Add((points[i].value - points[i - 1].value) / dt);
  }
  if (diffs.count() < 2) {
    return Status::FailedPrecondition("degenerate time axis");
  }
  return diffs.stddev();
}

std::vector<double> VolatilityEstimator::FromArchives(
    const std::vector<const TickArchive*>& archives, size_t window,
    double fallback) {
  std::vector<double> out;
  out.reserve(archives.size());
  for (const TickArchive* archive : archives) {
    if (archive == nullptr) {
      out.push_back(fallback);
      continue;
    }
    auto estimate = FromArchive(*archive, window);
    out.push_back(estimate.ok() ? std::max(*estimate, fallback) : fallback);
  }
  return out;
}

}  // namespace kc
