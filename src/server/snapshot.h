#ifndef KALMANCAST_SERVER_SNAPSHOT_H_
#define KALMANCAST_SERVER_SNAPSHOT_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "server/server.h"

namespace kc {

/// Reconstructs a fresh, configured (but uninitialized) predictor for a
/// source id — the same prototype that was registered originally. The
/// snapshot stores predictor *state*, not configuration; configuration
/// (models, noise parameters, sync modes) lives in the deployment's code,
/// exactly like the paper's protocol where source and server agree on the
/// procedure out of band.
using PredictorFactory =
    std::function<std::unique_ptr<Predictor>(int32_t source_id)>;

/// Writes the server's durable state to a line-oriented text file:
/// ticks, staleness limit, per-source replica state (bound, liveness,
/// predictor full state), registered queries, and (optionally) the
/// per-source archives.
///
/// Predictor state round-trips through the same EncodeFullState /
/// ApplyFullState path the FULL_SYNC wire message uses, so a restored
/// server answers exactly what the saved one answered.
Status SaveServerSnapshot(const StreamServer& server, const std::string& path,
                          bool include_archives = true);

/// Restores a snapshot into `server` (which must be default-constructed /
/// empty). `factory` must produce predictors with the same configuration
/// as at save time; state mismatches surface as payload-size errors.
Status LoadServerSnapshot(const std::string& path,
                          const PredictorFactory& factory,
                          StreamServer* server);

}  // namespace kc

#endif  // KALMANCAST_SERVER_SNAPSHOT_H_
