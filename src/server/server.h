#ifndef KALMANCAST_SERVER_SERVER_H_
#define KALMANCAST_SERVER_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/message.h"
#include "server/archive.h"
#include "server/query.h"
#include "server/query_eval.h"
#include "suppression/replica.h"

namespace kc {

namespace obs {
class Counter;
class FlightRecorder;
class Gauge;
class HealthMonitor;
class Histogram;
class MetricRegistry;
class PrecisionAuditor;
}  // namespace obs

/// The stream management server: a registry of per-source predictor
/// replicas plus a set of continuous queries answered from those cached
/// procedures — i.e. "without the clients' involvement", which is the
/// communication saving the paper measures.
///
/// Single-threaded by design: one StreamServer is driven by
/// Tick()/OnMessage() from a single harness thread (or an embedding
/// application's event loop). Multi-core deployments run one StreamServer
/// per shard behind a ShardedServer (src/fleet/sharded_server.h), which
/// keeps every instance thread-confined to its shard worker.
class StreamServer : public SourceView {
 public:
  StreamServer() = default;

  /// Registers a source. `predictor` must be a fresh clone of the
  /// source-side predictor's configuration. Fails on duplicate ids.
  Status RegisterSource(int32_t source_id, std::unique_ptr<Predictor> predictor);

  /// Removes a source (its queries start failing with NotFound). The
  /// source's archive is erased with it: a later registration under the
  /// same id starts a fresh history instead of resuming the dead
  /// source's.
  Status UnregisterSource(int32_t source_id);

  /// Advances every replica one stream tick.
  void Tick();

  /// Routes a wire message to its source's replica.
  Status OnMessage(const Message& msg);

  /// The current bounded answer for one source.
  StatusOr<BoundedAnswer> SourceValue(int32_t source_id) const override;

  /// Registers a named continuous query. Fails if the spec is invalid,
  /// the name is taken, or a referenced source is unknown.
  Status AddQuery(const std::string& name, QuerySpec spec);

  Status RemoveQuery(const std::string& name);

  /// Evaluates one registered query now.
  StatusOr<QueryResult> Evaluate(const std::string& name) const;

  /// Evaluates an ad-hoc spec without registering it.
  StatusOr<QueryResult> EvaluateSpec(const QuerySpec& spec,
                                     const std::string& name = "adhoc") const;

  /// Evaluates every registered query (order: by name).
  std::vector<QueryResult> EvaluateAll() const;

  /// Evaluates exactly the queries whose EVERY cadence has elapsed since
  /// their previous due evaluation, and marks them evaluated. Call once
  /// per tick (after Tick()) for paper-style continuous query semantics.
  std::vector<QueryResult> EvaluateDue();

  /// Sets the liveness threshold: a source silent (no message, heartbeats
  /// included) for more than `max_silent_ticks` replica ticks marks every
  /// query touching it stale. 0 disables staleness tracking (default).
  void SetStalenessLimit(int64_t max_silent_ticks) {
    staleness_limit_ = max_silent_ticks;
  }
  int64_t staleness_limit() const { return staleness_limit_; }

  /// True if the source exists, is initialized, and has exceeded the
  /// staleness limit.
  bool IsStale(int32_t source_id) const override;

  /// Enables loss-tolerant recovery on every replica, current and future:
  /// wire-seq gap detection, silence escalation, RESYNC_REQUEST emission
  /// through the control sink, and bound-widening quarantine while
  /// desynced (see ReplicaRecoveryConfig).
  void SetRecovery(const ReplicaRecoveryConfig& config);
  const ReplicaRecoveryConfig& recovery() const { return recovery_; }

  /// True if the source's replica is quarantined pending resync.
  bool IsDesynced(int32_t source_id) const override;

  /// Enables per-tick archiving of every *scalar* source's bounded view
  /// into a ring of `capacity` points (multi-dimensional sources are
  /// skipped). Costs one append per source per tick and zero
  /// communication — the archive is built entirely from cached
  /// predictions. Call before the ticks you want recorded.
  void EnableArchiving(size_t capacity);

  /// The archive for one source; error if archiving is disabled or the
  /// source is unknown/non-scalar.
  StatusOr<const TickArchive*> Archive(int32_t source_id) const override;

  /// Historical aggregate over one source's archived views in [t0, t1].
  StatusOr<QueryResult> HistoricalAggregate(int32_t source_id,
                                            AggregateKind kind, double t0,
                                            double t1) const;

  /// Installs the downlink used to push control messages (SET_BOUND) back
  /// to sources. The deployment (e.g. Fleet) routes by source_id.
  using ControlSink = std::function<Status(const Message&)>;
  void SetControlSink(ControlSink sink) { control_sink_ = std::move(sink); }

  /// Pushes a new precision bound to a source over the control downlink.
  /// The source adopts it on its next reading; the server's replica keeps
  /// reporting the old bound until the source's next data message confirms
  /// the change (the contract is never overstated in the interim).
  Status PushBound(int32_t source_id, double delta);

  size_t num_sources() const { return replicas_.size(); }
  size_t num_queries() const { return queries_.size(); }
  int64_t ticks() const override { return ticks_; }
  int64_t messages_processed() const { return messages_processed_; }

  /// Direct replica access (diagnostics/tests); nullptr if unknown.
  const ServerReplica* replica(int32_t source_id) const override;

  /// Registered query names (sorted).
  std::vector<std::string> QueryNames() const;

  /// Registered source ids (sorted).
  std::vector<int32_t> SourceIds() const;

  /// The spec of a registered query.
  StatusOr<QuerySpec> GetQuery(const std::string& name) const;

  /// Restores the server clock (snapshot loading only; see
  /// server/snapshot.h). Must be called before any Tick().
  void RestoreTicks(int64_t ticks) { ticks_ = ticks; }

  /// Appends one archived point for a source (snapshot loading only).
  /// Requires archiving enabled.
  Status RestoreArchivePoint(int32_t source_id, double time, double value,
                             double bound);

  /// Binds the serving path's telemetry to a metric arena: kc.server.*
  /// counters/gauges, the wall-clock tick-latency histogram, and the
  /// per-tick bound-width distribution. The binding propagates to every
  /// registered replica (and their predictors); sources registered later
  /// are bound on registration. In a sharded deployment each shard's
  /// server binds its own arena, so hot-path recording never crosses
  /// shard boundaries. Pass nullptr to unbind.
  void BindMetrics(obs::MetricRegistry* registry);

  /// Attaches a flight recorder: every registered replica (and each one
  /// registered later) gets its per-source ring and records the receive
  /// side of the protocol into it. In a sharded deployment each shard's
  /// server binds its own recorder so hot-path recording stays
  /// shard-confined. Pass nullptr to detach.
  void BindFlightRecorder(obs::FlightRecorder* recorder);

  /// Attaches the filter-health watchdog: every replica feeds its
  /// resync-rate detector, and HealthOf()/QueryResult.health surface the
  /// verdicts. Same sharding discipline as BindFlightRecorder. Pass
  /// nullptr to detach.
  void BindHealth(obs::HealthMonitor* health);

  /// The watchdog's verdict for one source (kOk when no watchdog bound).
  obs::HealthState HealthOf(int32_t source_id) const override;

  /// Attaches the precision auditor's query ledger: every evaluation on
  /// this server is tallied per query name (served/failed/stale/degraded/
  /// unhealthy). Source-level audit sampling is driven by the deployment
  /// that owns both protocol ends (the fleet), not here. Pass nullptr to
  /// detach.
  void BindAudit(obs::PrecisionAuditor* auditor) { auditor_ = auditor; }

 private:
  /// Arena handles, cached at bind time; null until BindMetrics.
  struct Metrics {
    obs::Counter* ticks = nullptr;
    obs::Counter* messages_in = nullptr;
    obs::Counter* control_out = nullptr;
    obs::Counter* queries_served = nullptr;
    obs::Counter* queries_failed = nullptr;
    obs::Counter* queries_stale = nullptr;
    obs::Gauge* sources = nullptr;
    obs::Histogram* tick_latency_us = nullptr;  ///< Wall-clock.
    obs::Histogram* bound_width = nullptr;
  };

  /// Mirrors one query evaluation onto the arena (no-op when unbound).
  void RecordQueryOutcome(bool ok, bool stale) const;

  /// Mirrors one evaluation into the audit ledger (no-op when unbound).
  /// `result` is null for failed evaluations.
  void RecordQueryAudit(const std::string& name,
                        const QueryResult* result) const;

  /// Wires one replica's outbound RESYNC_REQUESTs into the control sink.
  void InstallControlSender(ServerReplica* replica);

  /// Re-binds one replica's recorder ring / watchdog entry from the
  /// currently attached recorder_/health_ (either may be null).
  void BindReplicaObservability(ServerReplica* replica);

  std::map<int32_t, std::unique_ptr<ServerReplica>> replicas_;
  ReplicaRecoveryConfig recovery_;
  QueryTable queries_;
  std::map<int32_t, TickArchive> archives_;
  ControlSink control_sink_;
  Metrics metrics_;
  obs::MetricRegistry* registry_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::HealthMonitor* health_ = nullptr;
  obs::PrecisionAuditor* auditor_ = nullptr;
  size_t archive_capacity_ = 0;  ///< 0 = archiving disabled.
  int64_t ticks_ = 0;
  int64_t messages_processed_ = 0;
  int64_t staleness_limit_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_SERVER_SERVER_H_
