#include "server/server.h"

#include "common/strings.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace kc {

void StreamServer::BindMetrics(obs::MetricRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    metrics_ = Metrics();
  } else {
    metrics_.ticks = registry->GetCounter("kc.server.ticks");
    metrics_.messages_in = registry->GetCounter("kc.server.messages_in");
    metrics_.control_out = registry->GetCounter("kc.server.control_out");
    metrics_.queries_served = registry->GetCounter("kc.server.queries_served");
    metrics_.queries_failed = registry->GetCounter("kc.server.queries_failed");
    metrics_.queries_stale = registry->GetCounter("kc.server.queries_stale");
    metrics_.sources = registry->GetGauge("kc.server.sources");
    // Tick latency is run-dependent by nature; flag it wall-clock so
    // deterministic exports can exclude it. 1us..32ms in octaves.
    metrics_.tick_latency_us = registry->GetHistogram(
        "kc.server.tick_latency_us", obs::Buckets::Exponential(1.0, 2.0, 16),
        /*wall_clock=*/true);
    // Precision bounds span tight contracts to wide budget-relaxed ones.
    metrics_.bound_width = registry->GetHistogram(
        "kc.server.bound_width", obs::Buckets::Exponential(0.01, 4.0, 12));
    metrics_.sources->Set(static_cast<double>(replicas_.size()));
  }
  for (auto& [id, replica] : replicas_) replica->BindMetrics(registry);
}

void StreamServer::RecordQueryOutcome(bool ok, bool stale) const {
  if (metrics_.queries_served == nullptr) return;
  if (!ok) {
    metrics_.queries_failed->Inc();
    return;
  }
  metrics_.queries_served->Inc();
  if (stale) metrics_.queries_stale->Inc();
}

void StreamServer::RecordQueryAudit(const std::string& name,
                                    const QueryResult* result) const {
  if (auditor_ == nullptr) return;
  if (result == nullptr) {
    auditor_->OnQuery(name, /*ok=*/false, false, false, false);
    return;
  }
  auditor_->OnQuery(name, /*ok=*/true, result->stale, result->degraded,
                    result->health != obs::HealthState::kOk);
}

Status StreamServer::RegisterSource(int32_t source_id,
                                    std::unique_ptr<Predictor> predictor) {
  if (predictor == nullptr) {
    return Status::InvalidArgument("null predictor");
  }
  if (replicas_.count(source_id) > 0) {
    return Status::AlreadyExists(StrFormat("source %d already registered",
                                           source_id));
  }
  auto replica = std::make_unique<ServerReplica>(source_id, std::move(predictor));
  if (registry_ != nullptr) replica->BindMetrics(registry_);
  if (recovery_.enabled) replica->SetRecovery(recovery_);
  InstallControlSender(replica.get());
  BindReplicaObservability(replica.get());
  replicas_[source_id] = std::move(replica);
  if (metrics_.sources != nullptr) {
    metrics_.sources->Set(static_cast<double>(replicas_.size()));
  }
  return Status::Ok();
}

Status StreamServer::UnregisterSource(int32_t source_id) {
  if (replicas_.erase(source_id) == 0) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  // Drop the archive with the replica: a re-registered id must not resume
  // the dead source's history (Record's non-decreasing-time invariant can
  // fire after a snapshot restore otherwise).
  archives_.erase(source_id);
  if (metrics_.sources != nullptr) {
    metrics_.sources->Set(static_cast<double>(replicas_.size()));
  }
  return Status::Ok();
}

void StreamServer::Tick() {
  KC_TRACE_SCOPE("server.tick");
  const bool bound = metrics_.ticks != nullptr;
  int64_t t0 = bound ? obs::TraceNowNs() : 0;
  for (auto& [id, replica] : replicas_) replica->Tick();
  ++ticks_;
  if (archive_capacity_ > 0) {
    for (auto& [id, replica] : replicas_) {
      if (!replica->initialized() || replica->predictor().dims() != 1) {
        continue;
      }
      auto it = archives_.find(id);
      if (it == archives_.end()) {
        it = archives_.emplace(id, TickArchive(archive_capacity_)).first;
      }
      it->second.Record(static_cast<double>(ticks_), replica->Value()[0],
                        replica->bound());
    }
  }
  if (bound) {
    metrics_.ticks->Inc();
    for (auto& [id, replica] : replicas_) {
      if (replica->initialized()) {
        metrics_.bound_width->Record(replica->bound());
      }
    }
    metrics_.tick_latency_us->Record(
        static_cast<double>(obs::TraceNowNs() - t0) * 1e-3);
  }
}

Status StreamServer::OnMessage(const Message& msg) {
  auto it = replicas_.find(msg.source_id);
  if (it == replicas_.end()) {
    return Status::NotFound(StrFormat("message from unknown source %d",
                                      msg.source_id));
  }
  ++messages_processed_;
  if (metrics_.messages_in != nullptr) metrics_.messages_in->Inc();
  return it->second->OnMessage(msg);
}

StatusOr<BoundedAnswer> StreamServer::SourceValue(int32_t source_id) const {
  auto it = replicas_.find(source_id);
  if (it == replicas_.end()) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  const ServerReplica& r = *it->second;
  if (!r.initialized()) {
    return Status::FailedPrecondition(
        StrFormat("source %d has not reported yet", source_id));
  }
  BoundedAnswer answer;
  answer.value = r.Value();
  answer.bound = r.bound();
  answer.last_heard_seq = r.last_heard_seq();
  answer.degraded = r.desynced();
  return answer;
}

Status StreamServer::AddQuery(const std::string& name, QuerySpec spec) {
  return queries_.Add(*this, name, std::move(spec));
}

Status StreamServer::RemoveQuery(const std::string& name) {
  return queries_.Remove(name);
}

StatusOr<QueryResult> StreamServer::Evaluate(const std::string& name) const {
  KC_TRACE_SCOPE("server.evaluate");
  StatusOr<QueryResult> result = queries_.Evaluate(*this, name);
  RecordQueryOutcome(result.ok(), result.ok() && result->stale);
  RecordQueryAudit(name, result.ok() ? &*result : nullptr);
  return result;
}

StatusOr<QueryResult> StreamServer::EvaluateSpec(const QuerySpec& spec,
                                                 const std::string& name) const {
  StatusOr<QueryResult> result = EvaluateSpecOn(*this, spec, name);
  RecordQueryOutcome(result.ok(), result.ok() && result->stale);
  RecordQueryAudit(name, result.ok() ? &*result : nullptr);
  return result;
}

std::vector<QueryResult> StreamServer::EvaluateAll() const {
  KC_TRACE_SCOPE("server.evaluate_all");
  std::vector<QueryResult> results = queries_.EvaluateAll(*this);
  for (const QueryResult& r : results) {
    RecordQueryOutcome(true, r.stale);
    RecordQueryAudit(r.name, &r);
  }
  return results;
}

std::vector<QueryResult> StreamServer::EvaluateDue() {
  KC_TRACE_SCOPE("server.evaluate_due");
  std::vector<QueryResult> results = queries_.EvaluateDue(*this);
  for (const QueryResult& r : results) {
    RecordQueryOutcome(true, r.stale);
    RecordQueryAudit(r.name, &r);
  }
  return results;
}

Status StreamServer::PushBound(int32_t source_id, double delta) {
  if (!control_sink_) {
    return Status::FailedPrecondition("no control sink installed");
  }
  if (replicas_.count(source_id) == 0) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  if (delta <= 0.0) {
    return Status::InvalidArgument("bound must be positive");
  }
  Message msg;
  msg.source_id = source_id;
  msg.type = MessageType::kSetBound;
  msg.seq = 0;
  msg.time = static_cast<double>(ticks_);
  msg.payload = {delta};
  Status s = control_sink_(msg);
  if (s.ok() && metrics_.control_out != nullptr) metrics_.control_out->Inc();
  return s;
}

void StreamServer::EnableArchiving(size_t capacity) {
  archive_capacity_ = std::max<size_t>(capacity, 1);
}

StatusOr<const TickArchive*> StreamServer::Archive(int32_t source_id) const {
  if (archive_capacity_ == 0) {
    return Status::FailedPrecondition("archiving not enabled");
  }
  auto it = archives_.find(source_id);
  if (it == archives_.end()) {
    return Status::NotFound(
        StrFormat("no archive for source %d (unknown, non-scalar, or no "
                  "ticks recorded yet)",
                  source_id));
  }
  return &it->second;
}

StatusOr<QueryResult> StreamServer::HistoricalAggregate(int32_t source_id,
                                                        AggregateKind kind,
                                                        double t0,
                                                        double t1) const {
  auto archive = Archive(source_id);
  if (!archive.ok()) return archive.status();
  return (*archive)->Aggregate(kind, t0, t1);
}

void StreamServer::SetRecovery(const ReplicaRecoveryConfig& config) {
  recovery_ = config;
  for (auto& [id, replica] : replicas_) replica->SetRecovery(recovery_);
}

bool StreamServer::IsDesynced(int32_t source_id) const {
  auto it = replicas_.find(source_id);
  return it != replicas_.end() && it->second->desynced();
}

void StreamServer::InstallControlSender(ServerReplica* replica) {
  // Consults control_sink_ at send time, so the hookup survives any
  // SetControlSink order relative to RegisterSource. A failed (or absent)
  // downlink is swallowed: the replica's backoff simply retries.
  replica->SetControlSender([this](const Message& msg) {
    if (!control_sink_) return;
    Status s = control_sink_(msg);
    if (s.ok() && metrics_.control_out != nullptr) metrics_.control_out->Inc();
  });
}

void StreamServer::BindFlightRecorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
  for (auto& [id, replica] : replicas_) BindReplicaObservability(replica.get());
}

void StreamServer::BindHealth(obs::HealthMonitor* health) {
  health_ = health;
  for (auto& [id, replica] : replicas_) BindReplicaObservability(replica.get());
}

void StreamServer::BindReplicaObservability(ServerReplica* replica) {
  obs::SourceRecorder* ring =
      recorder_ == nullptr ? nullptr : recorder_->ForSource(replica->source_id());
  obs::SourceHealth* entry =
      health_ == nullptr
          ? nullptr
          : health_->ForSource(replica->source_id(),
                               replica->predictor().dims());
  replica->BindObservability(ring, entry);
}

obs::HealthState StreamServer::HealthOf(int32_t source_id) const {
  return health_ == nullptr ? obs::HealthState::kOk
                            : health_->StateOf(source_id);
}

bool StreamServer::IsStale(int32_t source_id) const {
  if (staleness_limit_ <= 0) return false;
  auto it = replicas_.find(source_id);
  if (it == replicas_.end() || !it->second->initialized()) return false;
  return it->second->TicksSinceHeard() > staleness_limit_;
}

const ServerReplica* StreamServer::replica(int32_t source_id) const {
  auto it = replicas_.find(source_id);
  return it == replicas_.end() ? nullptr : it->second.get();
}

std::vector<std::string> StreamServer::QueryNames() const {
  return queries_.Names();
}

std::vector<int32_t> StreamServer::SourceIds() const {
  std::vector<int32_t> ids;
  ids.reserve(replicas_.size());
  for (const auto& [id, replica] : replicas_) ids.push_back(id);
  return ids;
}

StatusOr<QuerySpec> StreamServer::GetQuery(const std::string& name) const {
  return queries_.Get(name);
}

Status StreamServer::RestoreArchivePoint(int32_t source_id, double time,
                                         double value, double bound) {
  if (archive_capacity_ == 0) {
    return Status::FailedPrecondition("archiving not enabled");
  }
  if (replicas_.count(source_id) == 0) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  auto it = archives_.find(source_id);
  if (it == archives_.end()) {
    it = archives_.emplace(source_id, TickArchive(archive_capacity_)).first;
  }
  it->second.Record(time, value, bound);
  return Status::Ok();
}

}  // namespace kc
