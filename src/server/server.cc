#include "server/server.h"

#include "common/strings.h"

namespace kc {

Status StreamServer::RegisterSource(int32_t source_id,
                                    std::unique_ptr<Predictor> predictor) {
  if (predictor == nullptr) {
    return Status::InvalidArgument("null predictor");
  }
  if (replicas_.count(source_id) > 0) {
    return Status::AlreadyExists(StrFormat("source %d already registered",
                                           source_id));
  }
  replicas_[source_id] =
      std::make_unique<ServerReplica>(source_id, std::move(predictor));
  return Status::Ok();
}

Status StreamServer::UnregisterSource(int32_t source_id) {
  if (replicas_.erase(source_id) == 0) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  // Drop the archive with the replica: a re-registered id must not resume
  // the dead source's history (Record's non-decreasing-time invariant can
  // fire after a snapshot restore otherwise).
  archives_.erase(source_id);
  return Status::Ok();
}

void StreamServer::Tick() {
  for (auto& [id, replica] : replicas_) replica->Tick();
  ++ticks_;
  if (archive_capacity_ > 0) {
    for (auto& [id, replica] : replicas_) {
      if (!replica->initialized() || replica->predictor().dims() != 1) {
        continue;
      }
      auto it = archives_.find(id);
      if (it == archives_.end()) {
        it = archives_.emplace(id, TickArchive(archive_capacity_)).first;
      }
      it->second.Record(static_cast<double>(ticks_), replica->Value()[0],
                        replica->bound());
    }
  }
}

Status StreamServer::OnMessage(const Message& msg) {
  auto it = replicas_.find(msg.source_id);
  if (it == replicas_.end()) {
    return Status::NotFound(StrFormat("message from unknown source %d",
                                      msg.source_id));
  }
  ++messages_processed_;
  return it->second->OnMessage(msg);
}

StatusOr<BoundedAnswer> StreamServer::SourceValue(int32_t source_id) const {
  auto it = replicas_.find(source_id);
  if (it == replicas_.end()) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  const ServerReplica& r = *it->second;
  if (!r.initialized()) {
    return Status::FailedPrecondition(
        StrFormat("source %d has not reported yet", source_id));
  }
  BoundedAnswer answer;
  answer.value = r.Value();
  answer.bound = r.bound();
  answer.last_heard_seq = r.last_heard_seq();
  return answer;
}

Status StreamServer::AddQuery(const std::string& name, QuerySpec spec) {
  return queries_.Add(*this, name, std::move(spec));
}

Status StreamServer::RemoveQuery(const std::string& name) {
  return queries_.Remove(name);
}

StatusOr<QueryResult> StreamServer::Evaluate(const std::string& name) const {
  return queries_.Evaluate(*this, name);
}

StatusOr<QueryResult> StreamServer::EvaluateSpec(const QuerySpec& spec,
                                                 const std::string& name) const {
  return EvaluateSpecOn(*this, spec, name);
}

std::vector<QueryResult> StreamServer::EvaluateAll() const {
  return queries_.EvaluateAll(*this);
}

std::vector<QueryResult> StreamServer::EvaluateDue() {
  return queries_.EvaluateDue(*this);
}

Status StreamServer::PushBound(int32_t source_id, double delta) {
  if (!control_sink_) {
    return Status::FailedPrecondition("no control sink installed");
  }
  if (replicas_.count(source_id) == 0) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  if (delta <= 0.0) {
    return Status::InvalidArgument("bound must be positive");
  }
  Message msg;
  msg.source_id = source_id;
  msg.type = MessageType::kSetBound;
  msg.seq = 0;
  msg.time = static_cast<double>(ticks_);
  msg.payload = {delta};
  return control_sink_(msg);
}

void StreamServer::EnableArchiving(size_t capacity) {
  archive_capacity_ = std::max<size_t>(capacity, 1);
}

StatusOr<const TickArchive*> StreamServer::Archive(int32_t source_id) const {
  if (archive_capacity_ == 0) {
    return Status::FailedPrecondition("archiving not enabled");
  }
  auto it = archives_.find(source_id);
  if (it == archives_.end()) {
    return Status::NotFound(
        StrFormat("no archive for source %d (unknown, non-scalar, or no "
                  "ticks recorded yet)",
                  source_id));
  }
  return &it->second;
}

StatusOr<QueryResult> StreamServer::HistoricalAggregate(int32_t source_id,
                                                        AggregateKind kind,
                                                        double t0,
                                                        double t1) const {
  auto archive = Archive(source_id);
  if (!archive.ok()) return archive.status();
  return (*archive)->Aggregate(kind, t0, t1);
}

bool StreamServer::IsStale(int32_t source_id) const {
  if (staleness_limit_ <= 0) return false;
  auto it = replicas_.find(source_id);
  if (it == replicas_.end() || !it->second->initialized()) return false;
  return it->second->TicksSinceHeard() > staleness_limit_;
}

const ServerReplica* StreamServer::replica(int32_t source_id) const {
  auto it = replicas_.find(source_id);
  return it == replicas_.end() ? nullptr : it->second.get();
}

std::vector<std::string> StreamServer::QueryNames() const {
  return queries_.Names();
}

std::vector<int32_t> StreamServer::SourceIds() const {
  std::vector<int32_t> ids;
  ids.reserve(replicas_.size());
  for (const auto& [id, replica] : replicas_) ids.push_back(id);
  return ids;
}

StatusOr<QuerySpec> StreamServer::GetQuery(const std::string& name) const {
  return queries_.Get(name);
}

Status StreamServer::RestoreArchivePoint(int32_t source_id, double time,
                                         double value, double bound) {
  if (archive_capacity_ == 0) {
    return Status::FailedPrecondition("archiving not enabled");
  }
  if (replicas_.count(source_id) == 0) {
    return Status::NotFound(StrFormat("unknown source %d", source_id));
  }
  auto it = archives_.find(source_id);
  if (it == archives_.end()) {
    it = archives_.emplace(source_id, TickArchive(archive_capacity_)).first;
  }
  it->second.Record(time, value, bound);
  return Status::Ok();
}

}  // namespace kc
