#include "server/query.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/strings.h"

namespace kc {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kValue:
      return "VALUE";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
  }
  return "UNKNOWN";
}

const char* TriggerStateName(TriggerState state) {
  switch (state) {
    case TriggerState::kNo:
      return "NO";
    case TriggerState::kMaybe:
      return "MAYBE";
    case TriggerState::kYes:
      return "YES";
  }
  return "UNKNOWN";
}

Status QuerySpec::Validate() const {
  if (sources.empty()) {
    return Status::InvalidArgument("query needs at least one source");
  }
  if (kind == AggregateKind::kValue && sources.size() != 1) {
    return Status::InvalidArgument("VALUE takes exactly one source");
  }
  if (within < 0.0) return Status::InvalidArgument("WITHIN must be >= 0");
  if (every <= 0) return Status::InvalidArgument("EVERY must be > 0");
  if (from_time.has_value() != to_time.has_value()) {
    return Status::InvalidArgument("FROM and TO must appear together");
  }
  if (from_time.has_value() && last_ticks.has_value()) {
    return Status::InvalidArgument("FROM..TO and LAST are mutually exclusive");
  }
  if (last_ticks.has_value() && *last_ticks <= 0) {
    return Status::InvalidArgument("LAST requires a positive tick count");
  }
  if (IsHistorical()) {
    if (from_time.has_value() && *from_time > *to_time) {
      return Status::InvalidArgument("FROM must not exceed TO");
    }
    if (sources.size() != 1) {
      return Status::InvalidArgument(
          "historical queries aggregate one source over time");
    }
  }
  return Status::Ok();
}

std::string QuerySpec::ToString() const {
  std::ostringstream os;
  os << "SELECT " << AggregateKindName(kind) << "(";
  for (size_t i = 0; i < sources.size(); ++i) {
    if (i > 0) os << ",";
    os << "s" << sources[i];
  }
  os << ")";
  if (from_time.has_value()) os << " FROM " << *from_time << " TO " << *to_time;
  if (last_ticks.has_value()) os << " LAST " << *last_ticks;
  if (threshold.has_value()) {
    os << " WHEN " << (above ? ">" : "<") << " " << *threshold;
  }
  if (within > 0.0) os << " WITHIN " << within;
  if (every > 1) os << " EVERY " << every;
  return os.str();
}

std::string QueryResult::ToString() const {
  std::ostringstream os;
  os << name << ": " << value << " +/- " << bound;
  if (trigger.has_value()) os << " trigger=" << TriggerStateName(*trigger);
  if (!meets_within) os << " (WITHIN NOT MET)";
  if (stale) os << " (STALE)";
  if (degraded) os << " (DEGRADED)";
  if (health != obs::HealthState::kOk) {
    os << " (HEALTH " << obs::HealthStateName(health) << ")";
  }
  return os.str();
}

double AggregateErrorBound(AggregateKind kind,
                           const std::vector<double>& member_bounds) {
  assert(!member_bounds.empty());
  switch (kind) {
    case AggregateKind::kValue:
      return member_bounds.front();
    case AggregateKind::kSum: {
      double sum = 0.0;
      for (double b : member_bounds) sum += b;
      return sum;
    }
    case AggregateKind::kAvg: {
      double sum = 0.0;
      for (double b : member_bounds) sum += b;
      return sum / static_cast<double>(member_bounds.size());
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return *std::max_element(member_bounds.begin(), member_bounds.end());
  }
  return 0.0;
}

double AggregateValues(AggregateKind kind, const std::vector<double>& values) {
  assert(!values.empty());
  switch (kind) {
    case AggregateKind::kValue:
      return values.front();
    case AggregateKind::kSum: {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum;
    }
    case AggregateKind::kAvg: {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum / static_cast<double>(values.size());
    }
    case AggregateKind::kMin:
      return *std::min_element(values.begin(), values.end());
    case AggregateKind::kMax:
      return *std::max_element(values.begin(), values.end());
  }
  return 0.0;
}

TriggerState EvaluateTrigger(double value, double bound, double threshold,
                             bool above) {
  if (above) {
    if (value - bound > threshold) return TriggerState::kYes;
    if (value + bound <= threshold) return TriggerState::kNo;
    return TriggerState::kMaybe;
  }
  if (value + bound < threshold) return TriggerState::kYes;
  if (value - bound >= threshold) return TriggerState::kNo;
  return TriggerState::kMaybe;
}

}  // namespace kc
