#include "server/report.h"

#include <sstream>

#include "common/strings.h"

namespace kc {

std::string DescribeServer(const StreamServer& server) {
  std::ostringstream os;
  os << "StreamServer @ tick " << server.ticks() << ": "
     << server.num_sources() << " sources, " << server.num_queries()
     << " queries, " << server.messages_processed()
     << " messages processed\n";
  if (server.staleness_limit() > 0) {
    os << "staleness limit: " << server.staleness_limit() << " ticks\n";
  }

  os << "sources:\n";
  for (int32_t id : server.SourceIds()) {
    const ServerReplica* replica = server.replica(id);
    if (replica == nullptr) continue;
    os << "  s" << id << " [" << replica->predictor().name() << "] ";
    if (!replica->initialized()) {
      os << "(not initialized)\n";
      continue;
    }
    Vector value = replica->Value();
    os << "value=";
    if (value.size() == 1) {
      os << StrFormat("%.6g", value[0]);
    } else {
      os << value.ToString();
    }
    os << " +/-" << StrFormat("%.4g", replica->bound()) << " last_seq="
       << replica->last_heard_seq() << " msgs="
       << replica->messages_applied();
    if (server.IsStale(id)) os << " STALE";
    auto archive = server.Archive(id);
    if (archive.ok()) {
      os << " archive=" << (*archive)->size() << "pts";
    }
    os << "\n";
  }

  if (server.num_queries() > 0) {
    os << "queries:\n";
    for (const QueryResult& result : server.EvaluateAll()) {
      os << "  " << result.ToString() << "\n";
    }
  }
  return os.str();
}

}  // namespace kc
