#ifndef KALMANCAST_SERVER_SPLIT_DEPLOY_H_
#define KALMANCAST_SERVER_SPLIT_DEPLOY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/channel.h"
#include "streams/generator.h"
#include "suppression/agent.h"
#include "suppression/predictor.h"
#include "suppression/replica.h"

namespace kc {

/// Split-process deployment: the source fleet and the stream server run
/// as separate OS processes joined by real sockets (net/transport.h) —
/// the distributed shape the paper's sensor networks assume.
///
/// Topology (one port, two protocols):
///  - UDP `port`: the uplink. Every agent in the client process shares
///    one datagram socket; frames carry source_id, the server demuxes.
///  - TCP `port`: the control plane. RESYNC_REQUEST / SET_BOUND ride it
///    server -> client, and transport-level tick barriers client ->
///    server keep the two processes' stream clocks lockstep.
///
/// The client drives the clock: each tick it offers every source's
/// reading, then sends a tick barrier. The server ticks its replicas per
/// barrier and applies whatever the uplink delivered. Closing the TCP
/// connection ends the run; the server drains a short grace window and
/// reports.
///
/// Byte-accounting parity: the client's uplink SentLine() and the
/// server's uplink DeliveredLine() are comparable, string for string,
/// with a simulated fleet running the same seed and workload — the CI
/// smoke in scripts/ci_asan.sh pins exactly that.

/// Workload + wiring shared by both halves. Sources are identified by
/// dense ids [0, num_sources); all per-source state is derived from the
/// factories so the two processes (and the simulated reference run)
/// construct identical fleets.
struct SplitConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  size_t ticks = 2880;
  int32_t num_sources = 0;
  /// Fleet seed: generators are Reset with SourceGeneratorSeed(seed, id),
  /// identically to Fleet/ShardedFleet.
  uint64_t seed = 1;
  AgentConfig agent_base;      ///< delta is overridden per source.
  std::vector<double> deltas;  ///< Per-source precision bounds.
  /// Server-side loss recovery (real UDP loses datagrams under load).
  ReplicaRecoveryConfig recovery;
  /// How long the server waits for the client to connect.
  int accept_timeout_ms = 30000;
};

/// Per-source factories. The predictor factory is called once per source
/// on each side (agent replica in the client, server replica in the
/// server), so both processes clone the same prototype by construction.
using GeneratorFactory =
    std::function<std::unique_ptr<StreamGenerator>(int32_t id)>;
using PredictorFactory =
    std::function<std::unique_ptr<Predictor>(int32_t id)>;

/// What the client half reports after the run.
struct SplitClientReport {
  NetworkStats uplink;   ///< Send-side books (SentLine is the CI surface).
  NetworkStats control;  ///< Control endpoint books (delivered = received).
  int64_t ticks = 0;
  int64_t corrections = 0;
  int64_t suppressed = 0;
  int64_t resyncs_served = 0;
  double suppression_ratio = 0.0;
};

/// What the server half reports after the run.
struct SplitServerReport {
  NetworkStats uplink;   ///< Delivery-side books (DeliveredLine).
  NetworkStats control;  ///< Send-side books of the control plane.
  int64_t ticks = 0;            ///< Tick barriers processed.
  int64_t frames_rejected = 0;  ///< Malformed datagrams discarded.
  int32_t initialized = 0;      ///< Replicas that saw INIT.
  int64_t resyncs_requested = 0;
  double mean_value = 0.0;  ///< Mean of replica answers at end (scalar).
};

/// Runs the source-fleet half: connects to a listening server at
/// config.host:config.port, drives config.ticks ticks, closes, reports.
StatusOr<SplitClientReport> RunSplitClient(
    const SplitConfig& config, const GeneratorFactory& make_generator,
    const PredictorFactory& make_predictor);

/// Runs the server half: listens on config.host:config.port, serves one
/// client until it disconnects, reports. `progress` (optional) is called
/// once per processed tick barrier.
StatusOr<SplitServerReport> RunSplitServer(
    const SplitConfig& config, const PredictorFactory& make_predictor,
    const std::function<void(int64_t tick)>& progress = nullptr);

}  // namespace kc

#endif  // KALMANCAST_SERVER_SPLIT_DEPLOY_H_
