#ifndef KALMANCAST_SERVER_SPLIT_DEPLOY_H_
#define KALMANCAST_SERVER_SPLIT_DEPLOY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/channel.h"
#include "streams/generator.h"
#include "suppression/agent.h"
#include "suppression/predictor.h"
#include "suppression/replica.h"

namespace kc {

/// Split-process deployment: the source fleet and the stream server run
/// as separate OS processes joined by real sockets (net/transport.h) —
/// the distributed shape the paper's sensor networks assume.
///
/// Topology (one port, two protocols):
///  - UDP `port`: the uplink. Every agent in the client process shares
///    one datagram socket; frames carry source_id, the server demuxes.
///  - TCP `port`: the control plane. RESYNC_REQUEST / SET_BOUND ride it
///    server -> client, and transport-level tick barriers client ->
///    server keep the two processes' stream clocks lockstep.
///
/// The client drives the clock: each tick it offers every source's
/// reading, then sends a tick barrier. The server ticks its replicas per
/// barrier and applies whatever the uplink delivered. Closing the TCP
/// connection ends the run; the server drains a short grace window and
/// reports.
///
/// Byte-accounting parity: the client's uplink SentLine() and the
/// server's uplink DeliveredLine() are comparable, string for string,
/// with a simulated fleet running the same seed and workload — the CI
/// smoke in scripts/ci_asan.sh pins exactly that.

/// Workload + wiring shared by both halves. Sources are identified by
/// dense ids [0, num_sources); all per-source state is derived from the
/// factories so the two processes (and the simulated reference run)
/// construct identical fleets.
struct SplitConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  size_t ticks = 2880;
  int32_t num_sources = 0;
  /// Fleet seed: generators are Reset with SourceGeneratorSeed(seed, id),
  /// identically to Fleet/ShardedFleet.
  uint64_t seed = 1;
  AgentConfig agent_base;      ///< delta is overridden per source.
  std::vector<double> deltas;  ///< Per-source precision bounds.
  /// Server-side loss recovery (real UDP loses datagrams under load).
  ReplicaRecoveryConfig recovery;
  /// How long the server waits for the client to connect.
  int accept_timeout_ms = 30000;

  // --- Distributed telemetry plane (docs/OBSERVABILITY.md,
  // "Distributed telemetry"; 0 = off) ---

  /// Snapshot cadence: every N ticks the client encodes its metric
  /// registry, recent trace spans, and drained send-timestamp log into a
  /// telemetry snapshot (obs/snapshot.h) and ships it over the control
  /// stream as an uncharged escape frame; the server's merger folds it
  /// into kc.remote.client.* rows. Also enables per-tick clock probes
  /// (offset + wire-latency attribution) and the remote black-box pull.
  int64_t telemetry_every = 0;
  /// Server-side HTTP telemetry endpoint: -1 = off, 0 = ephemeral port,
  /// >0 = that port. One scrape of /metrics covers both processes.
  int http_port = -1;
  /// Keeps the server's HTTP endpoint alive this many seconds after the
  /// client disconnects, so post-run scrapes see the final merged state.
  int serve_seconds = 0;
  /// Called once the HTTP endpoint is listening (resolved port).
  std::function<void(int port)> on_http_ready;
  /// Enables trace rings on both halves and a stitched cross-process
  /// Chrome trace (SplitServerReport::trace_json): client spans are
  /// rebased onto the server clock via the estimated offset and rendered
  /// as pid 1 ("fleet-client") next to the server's pid 0
  /// ("stream-server").
  bool trace = false;
};

/// Per-source factories. The predictor factory is called once per source
/// on each side (agent replica in the client, server replica in the
/// server), so both processes clone the same prototype by construction.
using GeneratorFactory =
    std::function<std::unique_ptr<StreamGenerator>(int32_t id)>;
using PredictorFactory =
    std::function<std::unique_ptr<Predictor>(int32_t id)>;

/// What the client half reports after the run.
struct SplitClientReport {
  NetworkStats uplink;   ///< Send-side books (SentLine is the CI surface).
  NetworkStats control;  ///< Control endpoint books (delivered = received).
  int64_t ticks = 0;
  int64_t corrections = 0;
  int64_t suppressed = 0;
  int64_t resyncs_served = 0;
  double suppression_ratio = 0.0;
  // Telemetry plane (zero / -1 when telemetry_every == 0):
  int64_t snapshots_sent = 0;
  int64_t clock_samples = 0;          ///< Accepted ping/pong round trips.
  int64_t clock_offset_ns = 0;        ///< Final estimate (server - client).
  int64_t clock_uncertainty_ns = -1;  ///< best RTT / 2; -1 = no estimate.
  int64_t blackbox_dumps_served = 0;  ///< Flight-recorder pulls answered.
};

/// What the server half reports after the run.
struct SplitServerReport {
  NetworkStats uplink;   ///< Delivery-side books (DeliveredLine).
  NetworkStats control;  ///< Send-side books of the control plane.
  int64_t ticks = 0;            ///< Tick barriers processed.
  int64_t frames_rejected = 0;  ///< Malformed datagrams discarded.
  int32_t initialized = 0;      ///< Replicas that saw INIT.
  int64_t resyncs_requested = 0;
  double mean_value = 0.0;  ///< Mean of replica answers at end (scalar).
  // Telemetry plane (zero / empty when telemetry_every == 0):
  int64_t snapshots_merged = 0;
  int64_t latency_matched = 0;    ///< Send records joined to arrivals.
  int64_t latency_unmatched = 0;  ///< Sends the wire genuinely lost.
  int64_t clock_offset_ns = 0;    ///< As reported by the client's last
                                  ///< snapshot.
  int64_t clock_uncertainty_ns = -1;
  int http_port = 0;        ///< Bound telemetry port (0 = endpoint off).
  std::string trace_json;   ///< Stitched cross-process trace (trace on).
  /// Flight-recorder dumps pulled from the client over the control
  /// channel (one per source whose replica requested a resync).
  std::vector<std::string> remote_black_boxes;
};

/// Runs the source-fleet half: connects to a listening server at
/// config.host:config.port, drives config.ticks ticks, closes, reports.
StatusOr<SplitClientReport> RunSplitClient(
    const SplitConfig& config, const GeneratorFactory& make_generator,
    const PredictorFactory& make_predictor);

/// Runs the server half: listens on config.host:config.port, serves one
/// client until it disconnects, reports. `progress` (optional) is called
/// once per processed tick barrier.
StatusOr<SplitServerReport> RunSplitServer(
    const SplitConfig& config, const PredictorFactory& make_predictor,
    const std::function<void(int64_t tick)>& progress = nullptr);

}  // namespace kc

#endif  // KALMANCAST_SERVER_SPLIT_DEPLOY_H_
