#ifndef KALMANCAST_SERVER_ARCHIVE_H_
#define KALMANCAST_SERVER_ARCHIVE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "server/query.h"

namespace kc {

/// A bounded ring archive of one source's per-tick bounded views.
///
/// Stream systems compare live data against history; the suppression
/// protocol makes that cheap, because the server can materialize a
/// complete per-tick history *without any extra communication* — each
/// tick's prediction plus its in-force precision bound is already a
/// certified record of where the source was. The archive keeps the most
/// recent `capacity` points and answers range and aggregate queries with
/// propagated error bounds.
class TickArchive {
 public:
  /// One archived view.
  struct Point {
    double time = 0.0;
    double value = 0.0;
    double bound = 0.0;
  };

  /// Keeps the most recent `capacity` points (>= 1 enforced).
  explicit TickArchive(size_t capacity);

  /// Appends a point; evicts the oldest when full. Times must be
  /// non-decreasing (asserted in debug builds).
  void Record(double time, double value, double bound);

  size_t size() const { return points_.size(); }
  size_t capacity() const { return capacity_; }
  int64_t total_recorded() const { return total_recorded_; }
  bool empty() const { return points_.empty(); }

  /// Oldest and newest archived times (0 when empty).
  double oldest_time() const;
  double newest_time() const;

  /// All points with t0 <= time <= t1, oldest first.
  std::vector<Point> Range(double t0, double t1) const;

  /// Aggregates the archived values in [t0, t1] with an error bound:
  ///   SUM: sum(values) +/- sum(bounds)
  ///   AVG: mean(values) +/- mean(bounds)
  ///   MIN/MAX: extremum +/- max(bounds)
  /// VALUE returns the latest point in range. Fails if the range is empty.
  StatusOr<QueryResult> Aggregate(AggregateKind kind, double t0,
                                  double t1) const;

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< Index of the oldest element when full.
  std::vector<Point> points_;  ///< Ring storage, logically ordered.
  int64_t total_recorded_ = 0;

  /// Logical index -> storage index.
  size_t At(size_t logical) const {
    return points_.size() < capacity_ ? logical
                                      : (head_ + logical) % capacity_;
  }
  const Point& Get(size_t logical) const { return points_[At(logical)]; }
};

}  // namespace kc

#endif  // KALMANCAST_SERVER_ARCHIVE_H_
