#ifndef KALMANCAST_SERVER_ALLOCATION_H_
#define KALMANCAST_SERVER_ALLOCATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kc {

/// How an aggregate query's total error budget is divided among its member
/// sources' precision bounds. For SUM the member bounds add up to the
/// query's bound, so the split determines both answer quality and message
/// cost: sources that are expensive to track should get looser bounds.
enum class AllocationPolicy {
  /// delta_i = delta_total / n.
  kUniform,
  /// delta_i proportional to the source's observed volatility (stddev of
  /// per-tick changes). Volatile sources receive looser bounds, which
  /// roughly equalizes message rates across members.
  kVarianceProportional,
  /// Start uniform, then periodically rebalance from observed message
  /// rates (AdaptiveAllocator below).
  kAdaptive,
};

const char* AllocationPolicyName(AllocationPolicy policy);

/// Computes a static bound split summing to `delta_total`.
/// `volatilities[i]` is an estimate of source i's per-tick change scale
/// (ignored for kUniform; for kAdaptive this returns the uniform start
/// point). All outputs are strictly positive provided delta_total > 0.
std::vector<double> AllocateBounds(AllocationPolicy policy, double delta_total,
                                   const std::vector<double>& volatilities);

/// Online rebalancer for AllocationPolicy::kAdaptive.
///
/// Every window it shrinks all member bounds by a fixed factor and hands
/// the reclaimed budget to the sources that sent the most messages — the
/// classic adaptive bound-setting loop, which converges toward equalized
/// marginal message cost without any prior knowledge of stream behaviour.
class AdaptiveAllocator {
 public:
  struct Config {
    /// Fraction of each bound retained before redistribution.
    double shrink = 0.90;
    /// Additive smoothing on message counts so idle sources keep nonzero
    /// claim on the budget.
    double rate_epsilon = 0.1;
  };

  AdaptiveAllocator(double delta_total, size_t n);
  AdaptiveAllocator(double delta_total, size_t n, Config config);

  /// Rebalances from the message counts observed since the last call.
  /// `messages[i]` is source i's messages in the window.
  void Rebalance(const std::vector<int64_t>& messages);

  const std::vector<double>& deltas() const { return deltas_; }
  double delta_total() const { return delta_total_; }
  int64_t rebalances() const { return rebalances_; }

 private:
  double delta_total_;
  Config config_;
  std::vector<double> deltas_;
  int64_t rebalances_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_SERVER_ALLOCATION_H_
