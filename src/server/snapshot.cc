#include "server/snapshot.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace kc {

namespace {

constexpr const char* kMagic = "KALMANCAST_SNAPSHOT";
constexpr int kVersion = 1;

void WriteQuery(std::ostream& out, const std::string& name,
                const QuerySpec& spec) {
  out << "query " << name << " " << static_cast<int>(spec.kind) << " "
      << spec.sources.size();
  for (int32_t id : spec.sources) out << " " << id;
  out << " " << spec.within << " " << spec.every;
  out << " " << (spec.threshold.has_value() ? 1 : 0) << " "
      << spec.threshold.value_or(0.0) << " " << (spec.above ? 1 : 0);
  out << " " << (spec.from_time.has_value() ? 1 : 0) << " "
      << spec.from_time.value_or(0.0) << " " << spec.to_time.value_or(0.0);
  out << " " << (spec.last_ticks.has_value() ? 1 : 0) << " "
      << spec.last_ticks.value_or(0);
  out << "\n";
}

StatusOr<QuerySpec> ReadQuery(std::istream& in, std::string* name) {
  QuerySpec spec;
  int kind = 0;
  size_t n_sources = 0;
  if (!(in >> *name >> kind >> n_sources)) {
    return Status::DataLoss("malformed query line");
  }
  spec.kind = static_cast<AggregateKind>(kind);
  for (size_t i = 0; i < n_sources; ++i) {
    int32_t id = 0;
    if (!(in >> id)) return Status::DataLoss("malformed query sources");
    spec.sources.push_back(id);
  }
  int has_thresh = 0, above = 0, has_from = 0, has_last = 0;
  double thresh = 0.0, from = 0.0, to = 0.0;
  int64_t last = 0;
  if (!(in >> spec.within >> spec.every >> has_thresh >> thresh >> above >>
        has_from >> from >> to >> has_last >> last)) {
    return Status::DataLoss("malformed query clauses");
  }
  if (has_thresh) spec.threshold = thresh;
  spec.above = above != 0;
  if (has_from) {
    spec.from_time = from;
    spec.to_time = to;
  }
  if (has_last) spec.last_ticks = last;
  return spec;
}

}  // namespace

Status SaveServerSnapshot(const StreamServer& server, const std::string& path,
                          bool include_archives) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for write: " + path);
  out.precision(17);

  out << kMagic << " " << kVersion << "\n";
  out << "ticks " << server.ticks() << "\n";
  out << "staleness " << server.staleness_limit() << "\n";

  for (int32_t id : server.SourceIds()) {
    const ServerReplica* replica = server.replica(id);
    if (replica == nullptr) continue;
    if (!replica->initialized()) {
      out << "source_uninit " << id << "\n";
      continue;
    }
    Vector value = replica->Value();
    std::vector<double> state = replica->predictor().EncodeFullState();
    if (state.empty()) {
      return Status::Unimplemented(
          StrFormat("source %d predictor does not support full-state "
                    "serialization",
                    id));
    }
    out << "source " << id << " " << replica->bound() << " "
        << replica->last_heard_seq() << " " << replica->last_heard_time()
        << " " << value.size();
    for (size_t d = 0; d < value.size(); ++d) out << " " << value[d];
    out << " " << state.size();
    for (double v : state) out << " " << v;
    out << "\n";
  }

  for (const std::string& name : server.QueryNames()) {
    if (name.find_first_of(" \t\n") != std::string::npos) {
      return Status::InvalidArgument("query names with whitespace cannot be "
                                     "snapshotted: " +
                                     name);
    }
    auto spec = server.GetQuery(name);
    if (!spec.ok()) return spec.status();
    WriteQuery(out, name, *spec);
  }

  if (include_archives) {
    for (int32_t id : server.SourceIds()) {
      auto archive = server.Archive(id);
      if (!archive.ok()) continue;  // Archiving off or no points.
      auto points = (*archive)->Range(-1e300, 1e300);
      out << "archive " << id << " " << (*archive)->capacity() << " "
          << points.size();
      for (const auto& p : points) {
        out << " " << p.time << " " << p.value << " " << p.bound;
      }
      out << "\n";
    }
  }
  out << "end\n";
  if (!out) return Status::DataLoss("write failed: " + path);
  return Status::Ok();
}

Status LoadServerSnapshot(const std::string& path,
                          const PredictorFactory& factory,
                          StreamServer* server) {
  if (server == nullptr || factory == nullptr) {
    return Status::InvalidArgument("null server or factory");
  }
  if (server->num_sources() != 0 || server->ticks() != 0) {
    return Status::FailedPrecondition("snapshot must load into a fresh server");
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    return Status::DataLoss("not a kalmancast snapshot: " + path);
  }

  bool archiving_enabled = false;
  std::string tag;
  while (in >> tag) {
    if (tag == "end") return Status::Ok();
    if (tag == "ticks") {
      int64_t ticks = 0;
      if (!(in >> ticks)) return Status::DataLoss("bad ticks");
      server->RestoreTicks(ticks);
    } else if (tag == "staleness") {
      int64_t limit = 0;
      if (!(in >> limit)) return Status::DataLoss("bad staleness");
      server->SetStalenessLimit(limit);
    } else if (tag == "source_uninit") {
      int32_t id = 0;
      if (!(in >> id)) return Status::DataLoss("bad source_uninit");
      auto predictor = factory(id);
      if (predictor == nullptr) {
        return Status::InvalidArgument(
            StrFormat("factory returned null for source %d", id));
      }
      KC_RETURN_IF_ERROR(server->RegisterSource(id, std::move(predictor)));
    } else if (tag == "source") {
      int32_t id = 0;
      double bound = 0.0, time = 0.0;
      int64_t seq = 0;
      size_t dims = 0;
      if (!(in >> id >> bound >> seq >> time >> dims)) {
        return Status::DataLoss("bad source header");
      }
      std::vector<double> value(dims);
      for (double& v : value) {
        if (!(in >> v)) return Status::DataLoss("bad source value");
      }
      size_t state_len = 0;
      if (!(in >> state_len)) return Status::DataLoss("bad state length");
      std::vector<double> state(state_len);
      for (double& v : state) {
        if (!(in >> v)) return Status::DataLoss("bad state payload");
      }

      auto predictor = factory(id);
      if (predictor == nullptr) {
        return Status::InvalidArgument(
            StrFormat("factory returned null for source %d", id));
      }
      KC_RETURN_IF_ERROR(server->RegisterSource(id, std::move(predictor)));

      // Replay the restoration through the ordinary protocol path: an
      // INIT with the archived view, then a FULL_SYNC with the exact
      // predictor state.
      Message init;
      init.source_id = id;
      init.type = MessageType::kInit;
      init.seq = seq;
      init.time = time;
      init.payload.push_back(bound);
      init.payload.insert(init.payload.end(), value.begin(), value.end());
      KC_RETURN_IF_ERROR(server->OnMessage(init));

      Message sync;
      sync.source_id = id;
      sync.type = MessageType::kFullSync;
      sync.seq = seq;
      sync.time = time;
      sync.payload.push_back(bound);
      sync.payload.insert(sync.payload.end(), state.begin(), state.end());
      KC_RETURN_IF_ERROR(server->OnMessage(sync));
    } else if (tag == "query") {
      std::string name;
      auto spec = ReadQuery(in, &name);
      if (!spec.ok()) return spec.status();
      KC_RETURN_IF_ERROR(server->AddQuery(name, *spec));
    } else if (tag == "archive") {
      int32_t id = 0;
      size_t capacity = 0, count = 0;
      if (!(in >> id >> capacity >> count)) {
        return Status::DataLoss("bad archive header");
      }
      if (!archiving_enabled) {
        server->EnableArchiving(capacity);
        archiving_enabled = true;
      }
      for (size_t i = 0; i < count; ++i) {
        double t = 0.0, v = 0.0, b = 0.0;
        if (!(in >> t >> v >> b)) return Status::DataLoss("bad archive point");
        KC_RETURN_IF_ERROR(server->RestoreArchivePoint(id, t, v, b));
      }
    } else {
      return Status::DataLoss("unknown snapshot tag: " + tag);
    }
  }
  return Status::DataLoss("snapshot truncated (no end marker): " + path);
}

}  // namespace kc
