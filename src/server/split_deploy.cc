#include "server/split_deploy.h"

#include <utility>

#include "common/strings.h"
#include "net/transport.h"
#include "server/simulation.h"

namespace kc {

StatusOr<SplitClientReport> RunSplitClient(
    const SplitConfig& config, const GeneratorFactory& make_generator,
    const PredictorFactory& make_predictor) {
  if (config.num_sources <= 0) {
    return Status::InvalidArgument("split client needs at least one source");
  }
  if (config.deltas.size() != static_cast<size_t>(config.num_sources)) {
    return Status::InvalidArgument("one delta per source required");
  }

  auto uplink_or = SocketChannel::UdpConnect(config.host, config.port);
  if (!uplink_or.ok()) return uplink_or.status();
  std::unique_ptr<SocketChannel> uplink = std::move(uplink_or).value();
  auto control_or = SocketChannel::TcpConnect(config.host, config.port);
  if (!control_or.ok()) return control_or.status();
  std::unique_ptr<SocketChannel> control = std::move(control_or).value();

  // All agents share the one uplink socket; the aggregate books it keeps
  // are exactly the merge a simulated fleet computes over its per-source
  // channels.
  std::vector<std::unique_ptr<StreamGenerator>> generators;
  std::vector<std::unique_ptr<SourceAgent>> agents;
  for (int32_t id = 0; id < config.num_sources; ++id) {
    auto generator = make_generator(id);
    generator->Reset(SourceGeneratorSeed(config.seed, id));
    generators.push_back(std::move(generator));
    AgentConfig agent_config = config.agent_base;
    agent_config.delta = config.deltas[static_cast<size_t>(id)];
    agents.push_back(std::make_unique<SourceAgent>(
        id, make_predictor(id), agent_config, uplink.get()));
  }
  // Downlink control (SET_BOUND, RESYNC_REQUEST) demuxes by source id.
  control->SetReceiver([&agents](const Message& msg) {
    if (msg.source_id < 0 ||
        msg.source_id >= static_cast<int32_t>(agents.size())) {
      return;  // Not ours; a real deployment would log and drop.
    }
    Status s = agents[static_cast<size_t>(msg.source_id)]->OnControl(msg);
    (void)s;
  });
  // Flow control: the server echoes each tick barrier once it has
  // processed the tick. Running at most one unacknowledged tick keeps
  // the datagrams in flight bounded by one tick's worth, so the server's
  // UDP buffer cannot overflow no matter how fast this process runs —
  // loss stays a property of the network, not of the harness.
  int64_t acked = -1;
  control->SetTickSink([&acked](int64_t tick) { acked = tick; });

  for (size_t t = 0; t < config.ticks; ++t) {
    // Control first, matching the simulated fleet's per-tick order
    // (channels advance before this tick's offers), so a resync request
    // is answered by this tick's uplink message.
    control->AdvanceTick();
    if (!control->last_error().ok()) return control->last_error();
    for (int32_t id = 0; id < config.num_sources; ++id) {
      Sample sample = generators[static_cast<size_t>(id)]->Next();
      Status s = agents[static_cast<size_t>(id)]->Offer(sample.measured);
      if (!s.ok()) return s;
    }
    // The barrier publishes "tick t's datagrams are all in flight".
    Status s = control->SendTickBarrier(static_cast<int64_t>(t));
    if (!s.ok()) return s;
    while (acked < static_cast<int64_t>(t)) {
      control->Poll(/*timeout_ms=*/50);
      if (!control->last_error().ok()) return control->last_error();
      if (control->peer_closed()) {
        return Status::DataLoss("server closed the control link mid-run");
      }
    }
  }

  SplitClientReport report;
  report.uplink = uplink->stats();
  report.control = control->stats();
  report.ticks = static_cast<int64_t>(config.ticks);
  for (const auto& agent : agents) {
    report.corrections += agent->stats().corrections;
    report.suppressed += agent->stats().suppressed;
    report.resyncs_served += agent->stats().resyncs_served;
  }
  int64_t decisions = report.uplink.messages_sent + report.suppressed;
  report.suppression_ratio =
      decisions > 0
          ? static_cast<double>(report.suppressed) / static_cast<double>(decisions)
          : 0.0;
  // Destructors close both sockets; the TCP FIN is the end-of-run signal
  // the server waits for.
  return report;
}

StatusOr<SplitServerReport> RunSplitServer(
    const SplitConfig& config, const PredictorFactory& make_predictor,
    const std::function<void(int64_t tick)>& progress) {
  if (config.num_sources <= 0) {
    return Status::InvalidArgument("split server needs at least one source");
  }

  // Bind the uplink before accepting control, so the client's first
  // datagram (sent right after its TCP connect succeeds) has a socket to
  // land in.
  auto uplink_or = SocketChannel::UdpBind(config.host, config.port);
  if (!uplink_or.ok()) return uplink_or.status();
  std::unique_ptr<SocketChannel> uplink = std::move(uplink_or).value();
  auto listener_or = TcpListener::Listen(config.host, config.port);
  if (!listener_or.ok()) return listener_or.status();
  auto control_or = (*listener_or)->Accept(config.accept_timeout_ms);
  if (!control_or.ok()) return control_or.status();
  std::unique_ptr<SocketChannel> control = std::move(control_or).value();

  std::vector<std::unique_ptr<ServerReplica>> replicas;
  for (int32_t id = 0; id < config.num_sources; ++id) {
    auto replica = std::make_unique<ServerReplica>(id, make_predictor(id));
    if (config.recovery.enabled) replica->SetRecovery(config.recovery);
    replica->SetControlSender([&control](const Message& msg) {
      Status s = control->Send(msg);
      (void)s;  // Backoff retries; a torn control link ends the run below.
    });
    replicas.push_back(std::move(replica));
  }
  uplink->SetReceiver([&replicas](const Message& msg) {
    if (msg.source_id < 0 ||
        msg.source_id >= static_cast<int32_t>(replicas.size())) {
      return;
    }
    Status s = replicas[static_cast<size_t>(msg.source_id)]->OnMessage(msg);
    (void)s;  // CORRECTION-before-INIT is expected under real loss.
  });

  int64_t ticks = 0;
  control->SetTickSink([&](int64_t tick) {
    // Barrier semantics: every datagram of `tick` was sent before the
    // barrier. Tick the replica clocks into `tick`, then apply what the
    // wire has delivered; stragglers apply next barrier (the wire_seq
    // guard keeps ordering honest). The echoed barrier acknowledges the
    // tick — the client's flow-control window.
    for (auto& replica : replicas) replica->Tick();
    uplink->Poll(/*timeout_ms=*/1);
    ++ticks;
    Status s = control->SendTickBarrier(tick);
    (void)s;  // A torn link surfaces via peer_closed below.
    if (progress) progress(tick);
  });

  while (!control->peer_closed()) {
    control->Poll(/*timeout_ms=*/50);
    uplink->AdvanceTick();
  }
  if (!control->last_error().ok()) return control->last_error();
  // Grace drain: the client's last datagrams may still be in flight.
  for (int i = 0; i < 20; ++i) uplink->Poll(/*timeout_ms=*/10);

  SplitServerReport report;
  report.uplink = uplink->stats();
  report.control = control->stats();
  report.ticks = ticks;
  report.frames_rejected = uplink->frames_rejected();
  double sum = 0.0;
  int32_t valued = 0;
  for (const auto& replica : replicas) {
    if (!replica->initialized()) continue;
    ++report.initialized;
    report.resyncs_requested += replica->resyncs_requested();
    Vector v = replica->Value();
    if (!v.empty()) {
      sum += v[0];
      ++valued;
    }
  }
  report.mean_value = valued > 0 ? sum / valued : 0.0;
  return report;
}

}  // namespace kc
