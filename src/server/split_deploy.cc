#include "server/split_deploy.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "net/transport.h"
#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/recorder.h"
#include "obs/remote.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "server/simulation.h"

namespace kc {

namespace {

/// True when the row differs from what the client last shipped — the
/// per-snapshot delta filter (the merger is latest-wins per name, so
/// resending unchanged rows is pure overhead).
bool RowChanged(const obs::MetricRow& row,
                const std::map<std::string, obs::MetricRow>& sent) {
  auto it = sent.find(row.name);
  if (it == sent.end()) return true;
  const obs::MetricRow& old = it->second;
  switch (row.kind) {
    case obs::MetricKind::kCounter:
      return row.counter != old.counter;
    case obs::MetricKind::kGauge:
      return row.gauge != old.gauge;
    case obs::MetricKind::kHistogram:
      return row.hist_counts != old.hist_counts ||
             row.hist_sum != old.hist_sum;
  }
  return true;
}

}  // namespace

StatusOr<SplitClientReport> RunSplitClient(
    const SplitConfig& config, const GeneratorFactory& make_generator,
    const PredictorFactory& make_predictor) {
  if (config.num_sources <= 0) {
    return Status::InvalidArgument("split client needs at least one source");
  }
  if (config.deltas.size() != static_cast<size_t>(config.num_sources)) {
    return Status::InvalidArgument("one delta per source required");
  }

  auto uplink_or = SocketChannel::UdpConnect(config.host, config.port);
  if (!uplink_or.ok()) return uplink_or.status();
  std::unique_ptr<SocketChannel> uplink = std::move(uplink_or).value();
  auto control_or = SocketChannel::TcpConnect(config.host, config.port);
  if (!control_or.ok()) return control_or.status();
  std::unique_ptr<SocketChannel> control = std::move(control_or).value();

  // All agents share the one uplink socket; the aggregate books it keeps
  // are exactly the merge a simulated fleet computes over its per-source
  // channels.
  std::vector<std::unique_ptr<StreamGenerator>> generators;
  std::vector<std::unique_ptr<SourceAgent>> agents;
  for (int32_t id = 0; id < config.num_sources; ++id) {
    auto generator = make_generator(id);
    generator->Reset(SourceGeneratorSeed(config.seed, id));
    generators.push_back(std::move(generator));
    AgentConfig agent_config = config.agent_base;
    agent_config.delta = config.deltas[static_cast<size_t>(id)];
    agents.push_back(std::make_unique<SourceAgent>(
        id, make_predictor(id), agent_config, uplink.get()));
  }
  // Downlink control (SET_BOUND, RESYNC_REQUEST) demuxes by source id.
  control->SetReceiver([&agents](const Message& msg) {
    if (msg.source_id < 0 ||
        msg.source_id >= static_cast<int32_t>(agents.size())) {
      return;  // Not ours; a real deployment would log and drop.
    }
    Status s = agents[static_cast<size_t>(msg.source_id)]->OnControl(msg);
    (void)s;
  });
  // Flow control: the server echoes each tick barrier once it has
  // processed the tick. Running at most one unacknowledged tick keeps
  // the datagrams in flight bounded by one tick's worth, so the server's
  // UDP buffer cannot overflow no matter how fast this process runs —
  // loss stays a property of the network, not of the harness.
  int64_t acked = -1;
  control->SetTickSink([&acked](int64_t tick) { acked = tick; });

  // --- Telemetry plane (client half) ---
  const bool telemetry = config.telemetry_every > 0;
  obs::MetricRegistry registry;
  obs::FlightRecorder recorder;
  obs::ClockOffsetEstimator estimator;
  obs::Gauge* offset_gauge = nullptr;
  obs::Gauge* uncertainty_gauge = nullptr;
  int64_t snapshots_sent = 0;
  int64_t dumps_served = 0;
  std::map<std::string, obs::MetricRow> sent_rows;
  if (telemetry) {
    uplink->BindMetrics(&registry);
    control->BindMetrics(&registry);
    recorder.BindMetrics(&registry);
    for (int32_t id = 0; id < config.num_sources; ++id) {
      agents[static_cast<size_t>(id)]->BindMetrics(&registry);
      agents[static_cast<size_t>(id)]->BindObservability(
          recorder.ForSource(id), nullptr);
    }
    // Wall-clock instruments: real-time measurements, excluded from
    // deterministic exports by flag.
    offset_gauge =
        registry.GetGauge("kc.net.clock_offset_us", /*wall_clock=*/true);
    uncertainty_gauge = registry.GetGauge("kc.net.clock_offset_uncertainty_us",
                                          /*wall_clock=*/true);
    uplink->EnableSendTimestampLog();
    control->SetClockPongSink([&](int64_t t0_ns, int64_t peer_ns) {
      estimator.AddSample(t0_ns, obs::TraceNowNs(), peer_ns);
      if (estimator.has_estimate()) {
        offset_gauge->Set(static_cast<double>(estimator.offset_ns()) * 1e-3);
        uncertainty_gauge->Set(
            static_cast<double>(estimator.uncertainty_ns()) * 1e-3);
      }
    });
    // Remote black-box pull: the server names a source, this half answers
    // with its flight-recorder ring — the client-side decision history the
    // server cannot see.
    control->SetBlackboxRequestSink([&](int64_t source_id) {
      std::string dump = recorder.DumpText(static_cast<int32_t>(source_id));
      Status s = control->SendBlackboxDump(source_id, dump);
      (void)s;  // A torn link surfaces via last_error in the tick loop.
      ++dumps_served;
    });
    if (config.trace) obs::SetTracingEnabled(true);
  }
  // Encodes and ships one snapshot: changed metric rows, the clock
  // estimate, drained send timestamps, and (when tracing) the retained
  // trace spans.
  auto send_snapshot = [&](int64_t tick) -> Status {
    obs::TelemetrySnapshot snapshot;
    snapshot.tick = tick;
    if (estimator.has_estimate()) {
      snapshot.clock_offset_ns = estimator.offset_ns();
      snapshot.clock_uncertainty_ns = estimator.uncertainty_ns();
    }
    snapshot.health_summary = StrFormat(
        "client: ticks=%lld sources=%d", static_cast<long long>(tick),
        config.num_sources);
    for (obs::MetricRow& row : registry.Rows()) {
      if (!RowChanged(row, sent_rows)) continue;
      sent_rows[row.name] = row;
      snapshot.rows.push_back(std::move(row));
    }
    uplink->DrainSendTimestamps(&snapshot.send_log);
    if (config.trace) {
      for (const obs::TraceEvent& e : obs::CollectTraceEvents()) {
        obs::SnapshotTraceEvent se;
        se.name = e.name != nullptr ? e.name : "?";
        se.start_ns = e.start_ns;
        se.duration_ns = e.duration_ns;
        se.flow_id = e.flow_id;
        se.depth = e.depth;
        se.thread_index = e.thread_index;
        snapshot.trace_events.push_back(std::move(se));
      }
    }
    std::vector<uint8_t> encoded;
    obs::EncodeSnapshot(snapshot, &encoded);
    Status s = control->SendTelemetrySnapshot(encoded.data(), encoded.size());
    if (s.ok()) ++snapshots_sent;
    return s;
  };

  for (size_t t = 0; t < config.ticks; ++t) {
    // Control first, matching the simulated fleet's per-tick order
    // (channels advance before this tick's offers), so a resync request
    // is answered by this tick's uplink message.
    control->AdvanceTick();
    if (!control->last_error().ok()) return control->last_error();
    for (int32_t id = 0; id < config.num_sources; ++id) {
      Sample sample = generators[static_cast<size_t>(id)]->Next();
      Status s = agents[static_cast<size_t>(id)]->Offer(sample.measured);
      if (!s.ok()) return s;
    }
    if (telemetry) {
      // Clock probe adjacent to the barrier: the server answers inside
      // its transport, so the ack wait below collects the pong within
      // this tick — one offset sample per tick, each bounded by a
      // loopback-tight RTT.
      Status ps = control->SendClockPing(obs::TraceNowNs());
      if (!ps.ok()) return ps;
    }
    // The barrier publishes "tick t's datagrams are all in flight".
    Status s = control->SendTickBarrier(static_cast<int64_t>(t));
    if (!s.ok()) return s;
    while (acked < static_cast<int64_t>(t)) {
      control->Poll(/*timeout_ms=*/50);
      if (!control->last_error().ok()) return control->last_error();
      if (control->peer_closed()) {
        return Status::DataLoss("server closed the control link mid-run");
      }
    }
    if (telemetry &&
        (t + 1) % static_cast<size_t>(config.telemetry_every) == 0) {
      Status ss = send_snapshot(static_cast<int64_t>(t) + 1);
      if (!ss.ok()) return ss;
    }
  }
  if (telemetry) {
    // Final snapshot: the last partial window's rows, send log, and
    // trace spans, so the server's merged view covers the whole run.
    Status s = send_snapshot(static_cast<int64_t>(config.ticks));
    if (!s.ok()) return s;
    // Serve any in-flight black-box pulls racing the shutdown before the
    // FIN ends the run.
    control->Poll(/*timeout_ms=*/20);
  }

  SplitClientReport report;
  report.uplink = uplink->stats();
  report.control = control->stats();
  report.ticks = static_cast<int64_t>(config.ticks);
  for (const auto& agent : agents) {
    report.corrections += agent->stats().corrections;
    report.suppressed += agent->stats().suppressed;
    report.resyncs_served += agent->stats().resyncs_served;
  }
  int64_t decisions = report.uplink.messages_sent + report.suppressed;
  report.suppression_ratio =
      decisions > 0
          ? static_cast<double>(report.suppressed) / static_cast<double>(decisions)
          : 0.0;
  report.snapshots_sent = snapshots_sent;
  report.clock_samples = static_cast<int64_t>(estimator.samples());
  if (estimator.has_estimate()) {
    report.clock_offset_ns = estimator.offset_ns();
    report.clock_uncertainty_ns = estimator.uncertainty_ns();
  }
  report.blackbox_dumps_served = dumps_served;
  if (telemetry && config.trace) obs::SetTracingEnabled(false);
  // Destructors close both sockets; the TCP FIN is the end-of-run signal
  // the server waits for.
  return report;
}

StatusOr<SplitServerReport> RunSplitServer(
    const SplitConfig& config, const PredictorFactory& make_predictor,
    const std::function<void(int64_t tick)>& progress) {
  if (config.num_sources <= 0) {
    return Status::InvalidArgument("split server needs at least one source");
  }

  // Bind the uplink before accepting control, so the client's first
  // datagram (sent right after its TCP connect succeeds) has a socket to
  // land in.
  auto uplink_or = SocketChannel::UdpBind(config.host, config.port);
  if (!uplink_or.ok()) return uplink_or.status();
  std::unique_ptr<SocketChannel> uplink = std::move(uplink_or).value();
  auto listener_or = TcpListener::Listen(config.host, config.port);
  if (!listener_or.ok()) return listener_or.status();
  auto control_or = (*listener_or)->Accept(config.accept_timeout_ms);
  if (!control_or.ok()) return control_or.status();
  std::unique_ptr<SocketChannel> control = std::move(control_or).value();

  std::vector<std::unique_ptr<ServerReplica>> replicas;
  for (int32_t id = 0; id < config.num_sources; ++id) {
    auto replica = std::make_unique<ServerReplica>(id, make_predictor(id));
    if (config.recovery.enabled) replica->SetRecovery(config.recovery);
    replica->SetControlSender([&control](const Message& msg) {
      Status s = control->Send(msg);
      (void)s;  // Backoff retries; a torn control link ends the run below.
    });
    replicas.push_back(std::move(replica));
  }
  // --- Telemetry plane (server half) ---
  const bool telemetry = config.telemetry_every > 0;
  obs::MetricRegistry registry;
  obs::RemoteTelemetryMerger::Options merger_options;
  merger_options.type_name = [](uint8_t type) {
    return std::string(MessageTypeName(static_cast<MessageType>(type)));
  };
  obs::RemoteTelemetryMerger merger(std::move(merger_options));
  std::unique_ptr<obs::TelemetryHttpServer> http;
  if (telemetry) {
    uplink->BindMetrics(&registry);
    control->BindMetrics(&registry);
    for (auto& replica : replicas) replica->BindMetrics(&registry);
    merger.BindMetrics(&registry);
    if (config.trace) obs::SetTracingEnabled(true);
  }
  if (telemetry && config.http_port >= 0) {
    obs::TelemetryHttpServer::Config http_config;
    http_config.port = config.http_port;
    http = std::make_unique<obs::TelemetryHttpServer>(http_config);
    Status s = http->Start();
    if (!s.ok()) return s;
    if (config.on_http_ready) config.on_http_ready(http->port());
  }
  // Republishes every HTTP snapshot from the current merged view — one
  // scrape covers both processes.
  auto publish = [&] {
    if (http == nullptr) return;
    http->PublishMetrics(merger.MergedRows(registry.Rows()));
    std::string body = StrFormat(
        "server: snapshots=%lld offset_us=%lld\n",
        static_cast<long long>(merger.snapshots_absorbed()),
        static_cast<long long>(merger.clock_offset_ns() / 1000));
    if (!merger.health_summary().empty()) {
      body += merger.health_summary() + "\n";
    }
    http->PublishHealthz(true, std::move(body));
  };
  if (telemetry) {
    control->SetSnapshotSink([&](const uint8_t* data, size_t size) {
      obs::TelemetrySnapshot snapshot;
      Status s = obs::DecodeSnapshot(data, size, &snapshot);
      if (!s.ok()) return;  // A garbage snapshot never crashes the merge.
      merger.Absorb(snapshot);
      publish();
    });
  }
  std::vector<std::string> black_boxes;
  if (telemetry) {
    control->SetBlackboxDumpSink([&black_boxes](int64_t source_id,
                                                std::string dump) {
      black_boxes.push_back(
          StrFormat("source %lld:\n", static_cast<long long>(source_id)) +
          dump);
    });
  }
  // Black-box pull trigger: a replica asking for a resync means the
  // protocol saw loss or divergence — exactly when the client-side
  // decision history is worth having. One pull per observed increase.
  std::vector<int64_t> resyncs_seen(replicas.size(), 0);

  uplink->SetReceiver([&](const Message& msg) {
    if (msg.source_id < 0 ||
        msg.source_id >= static_cast<int32_t>(replicas.size())) {
      return;
    }
    // Arrival time on the local steady clock, at delivery — the join key
    // for the client's send log (one-way latency = arrival - rebased
    // send).
    if (telemetry && msg.flow_id != 0) {
      merger.RecordArrival(msg.flow_id, static_cast<uint8_t>(msg.type),
                           obs::TraceNowNs());
    }
    Status s = replicas[static_cast<size_t>(msg.source_id)]->OnMessage(msg);
    (void)s;  // CORRECTION-before-INIT is expected under real loss.
  });

  int64_t ticks = 0;
  control->SetTickSink([&](int64_t tick) {
    // Barrier semantics: every datagram of `tick` was sent before the
    // barrier. Tick the replica clocks into `tick`, then apply what the
    // wire has delivered; stragglers apply next barrier (the wire_seq
    // guard keeps ordering honest). The echoed barrier acknowledges the
    // tick — the client's flow-control window.
    for (auto& replica : replicas) replica->Tick();
    uplink->Poll(/*timeout_ms=*/1);
    ++ticks;
    Status s = control->SendTickBarrier(tick);
    (void)s;  // A torn link surfaces via peer_closed below.
    if (telemetry) {
      for (size_t i = 0; i < replicas.size(); ++i) {
        int64_t resyncs = replicas[i]->resyncs_requested();
        if (resyncs > resyncs_seen[i]) {
          resyncs_seen[i] = resyncs;
          Status rs =
              control->SendBlackboxRequest(static_cast<int64_t>(i));
          (void)rs;
        }
      }
    }
    if (progress) progress(tick);
  });

  while (!control->peer_closed()) {
    control->Poll(/*timeout_ms=*/50);
    uplink->AdvanceTick();
  }
  if (!control->last_error().ok()) return control->last_error();
  // Grace drain: the client's last datagrams may still be in flight.
  for (int i = 0; i < 20; ++i) uplink->Poll(/*timeout_ms=*/10);

  SplitServerReport report;
  report.uplink = uplink->stats();
  report.control = control->stats();
  report.ticks = ticks;
  report.frames_rejected = uplink->frames_rejected();
  double sum = 0.0;
  int32_t valued = 0;
  for (const auto& replica : replicas) {
    if (!replica->initialized()) continue;
    ++report.initialized;
    report.resyncs_requested += replica->resyncs_requested();
    Vector v = replica->Value();
    if (!v.empty()) {
      sum += v[0];
      ++valued;
    }
  }
  report.mean_value = valued > 0 ? sum / valued : 0.0;

  if (telemetry) {
    report.snapshots_merged = merger.snapshots_absorbed();
    report.latency_matched = merger.latency_matched();
    report.latency_unmatched = merger.latency_unmatched();
    report.clock_offset_ns = merger.clock_offset_ns();
    report.clock_uncertainty_ns = merger.clock_uncertainty_ns();
    report.remote_black_boxes = std::move(black_boxes);
    if (config.trace) {
      obs::SetTracingEnabled(false);
      // Stitch: local spans keep pid 0; the client's spans arrive rebased
      // onto this clock (snapshot offset) as pid 1. Flow ids are
      // CausalFlowId(source, wire_seq) on BOTH ends, so an agent.send
      // span and the replica.apply span of the same message connect
      // across the pid boundary in the exported flow events.
      std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
      std::vector<obs::TraceEvent> remote = merger.RemoteTraceEvents();
      events.insert(events.end(), remote.begin(), remote.end());
      obs::ChromeTraceOptions trace_options;
      trace_options.process_names = {{0, "stream-server"},
                                     {1, "fleet-client"}};
      report.trace_json = obs::ExportChromeTrace(events, trace_options);
    }
    publish();  // Final merged state, covering the grace-drain arrivals.
    if (http != nullptr) {
      report.http_port = http->port();
      // Hold the endpoint open so post-run scrapes (the CI smoke, a
      // human) see the final merged state before the process exits.
      for (int i = 0; i < config.serve_seconds * 10; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }
  return report;
}

}  // namespace kc
