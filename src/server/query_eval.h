#ifndef KALMANCAST_SERVER_QUERY_EVAL_H_
#define KALMANCAST_SERVER_QUERY_EVAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/archive.h"
#include "server/query.h"
#include "suppression/replica.h"

namespace kc {

/// A source's current bounded answer.
struct BoundedAnswer {
  Vector value;
  double bound = 0.0;
  int64_t last_heard_seq = -1;
  /// True while the replica is quarantined (suspected desync): `bound` is
  /// already widened by the quarantine factor.
  bool degraded = false;
};

/// Read-only view of a set of sources that query evaluation runs against.
///
/// StreamServer implements it for a single shard; ShardedServer
/// (src/fleet) implements it across shards by routing each lookup to the
/// owning shard. Keeping evaluation against this interface is what lets
/// one query span sources scattered over many shards while every shard
/// keeps exclusive ownership of its replicas and archives.
class SourceView {
 public:
  virtual ~SourceView() = default;

  /// The current bounded answer for one source.
  virtual StatusOr<BoundedAnswer> SourceValue(int32_t source_id) const = 0;

  /// Direct replica access; nullptr if unknown.
  virtual const ServerReplica* replica(int32_t source_id) const = 0;

  /// True if the source exists, is initialized, and has exceeded the
  /// staleness limit (false when staleness tracking is disabled).
  virtual bool IsStale(int32_t source_id) const = 0;

  /// True if the source's replica is quarantined pending resync (always
  /// false when loss-tolerant recovery is disabled).
  virtual bool IsDesynced(int32_t /*source_id*/) const { return false; }

  /// The health watchdog's verdict for one source (kOk when the watchdog
  /// is disabled or the source is unknown).
  virtual obs::HealthState HealthOf(int32_t /*source_id*/) const {
    return obs::HealthState::kOk;
  }

  /// The archive for one source; error if archiving is disabled or the
  /// source is unknown/non-scalar.
  virtual StatusOr<const TickArchive*> Archive(int32_t source_id) const = 0;

  /// The view's stream clock (ticks elapsed).
  virtual int64_t ticks() const = 0;
};

/// Checks that every source a spec references exists in the view and is
/// scalar (aggregates are defined over scalar sources only).
Status ValidateSpecSources(const SourceView& view, const QuerySpec& spec);

/// Evaluates a spec against the view: live aggregates read each member's
/// bounded answer; historical specs (FROM..TO / LAST n) read the single
/// source's archive. A LAST n window larger than the recorded history is
/// clamped to the archive's oldest time rather than silently querying
/// t < 0.
StatusOr<QueryResult> EvaluateSpecOn(const SourceView& view,
                                     const QuerySpec& spec,
                                     const std::string& name);

/// The registered-continuous-query table shared by StreamServer and
/// ShardedServer: name -> spec plus the EVERY-cadence bookkeeping that
/// EvaluateDue needs. Not thread-safe; the driver evaluates queries from
/// one thread after the tick barrier.
class QueryTable {
 public:
  /// Validates the spec (including its sources against `view`) and
  /// registers it. Fails if the name is taken.
  Status Add(const SourceView& view, const std::string& name, QuerySpec spec);

  Status Remove(const std::string& name);

  StatusOr<QuerySpec> Get(const std::string& name) const;

  /// Evaluates one registered query now.
  StatusOr<QueryResult> Evaluate(const SourceView& view,
                                 const std::string& name) const;

  /// Evaluates every registered query (order: by name). Evaluation errors
  /// are folded into the result name, matching StreamServer semantics.
  std::vector<QueryResult> EvaluateAll(const SourceView& view) const;

  /// Evaluates exactly the queries whose EVERY cadence has elapsed since
  /// their previous due evaluation, and marks them evaluated.
  std::vector<QueryResult> EvaluateDue(const SourceView& view);

  /// Registered query names (sorted).
  std::vector<std::string> Names() const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    QuerySpec spec;
    int64_t last_due_eval = -1;  ///< Tick of the last EvaluateDue() firing.
  };

  std::map<std::string, Entry> entries_;
};

}  // namespace kc

#endif  // KALMANCAST_SERVER_QUERY_EVAL_H_
