#include "server/allocation.h"

#include <algorithm>
#include <cassert>

namespace kc {

const char* AllocationPolicyName(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kUniform:
      return "uniform";
    case AllocationPolicy::kVarianceProportional:
      return "variance_proportional";
    case AllocationPolicy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

std::vector<double> AllocateBounds(AllocationPolicy policy, double delta_total,
                                   const std::vector<double>& volatilities) {
  size_t n = volatilities.size();
  assert(n > 0 && delta_total > 0.0);
  std::vector<double> out(n, delta_total / static_cast<double>(n));
  if (policy != AllocationPolicy::kVarianceProportional) return out;

  // Proportional to volatility, floored so a perfectly flat source still
  // gets a usable bound.
  double sum = 0.0;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = std::max(volatilities[i], 1e-9);
    sum += weights[i];
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = delta_total * weights[i] / sum;
  }
  return out;
}

AdaptiveAllocator::AdaptiveAllocator(double delta_total, size_t n)
    : AdaptiveAllocator(delta_total, n, Config()) {}

AdaptiveAllocator::AdaptiveAllocator(double delta_total, size_t n, Config config)
    : delta_total_(delta_total),
      config_(config),
      deltas_(n, delta_total / static_cast<double>(std::max<size_t>(n, 1))) {
  assert(n > 0 && delta_total > 0.0);
}

void AdaptiveAllocator::Rebalance(const std::vector<int64_t>& messages) {
  assert(messages.size() == deltas_.size());
  size_t n = deltas_.size();

  // Shrink everyone, pooling the reclaimed budget.
  double pool = 0.0;
  for (double& d : deltas_) {
    double keep = d * config_.shrink;
    pool += d - keep;
    d = keep;
  }

  // Redistribute the pool proportionally to observed message pressure:
  // chatty sources get looser bounds, quiet sources effectively tighten.
  double weight_sum = 0.0;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = static_cast<double>(messages[i]) + config_.rate_epsilon;
    weight_sum += weights[i];
  }
  for (size_t i = 0; i < n; ++i) {
    deltas_[i] += pool * weights[i] / weight_sum;
  }
  ++rebalances_;
}

}  // namespace kc
