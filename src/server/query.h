#ifndef KALMANCAST_SERVER_QUERY_H_
#define KALMANCAST_SERVER_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/health_state.h"

namespace kc {

/// Aggregates supported by continuous queries.
enum class AggregateKind {
  kValue,  ///< The (single) source's current value.
  kSum,
  kAvg,
  kMin,
  kMax,
};

const char* AggregateKindName(AggregateKind kind);

/// A registered continuous query: an aggregate over a set of scalar
/// sources, answered from cached predictors with a guaranteed error bound.
struct QuerySpec {
  AggregateKind kind = AggregateKind::kValue;
  std::vector<int32_t> sources;
  /// Requested maximum answer error ("WITHIN x"). Zero means "no
  /// requirement": the query reports whatever bound the current source
  /// deltas imply.
  double within = 0.0;
  /// Evaluation cadence in ticks ("EVERY n"); informational.
  int64_t every = 1;
  /// Optional trigger: fire when the aggregate crosses this threshold.
  std::optional<double> threshold;
  /// Trigger direction: true = fire when aggregate > threshold.
  bool above = true;
  /// Optional historical range ("FROM t0 TO t1"): the aggregate runs over
  /// the server's per-tick archive of the (single) source instead of its
  /// live view. Requires archiving to be enabled on the server.
  std::optional<double> from_time;
  std::optional<double> to_time;
  /// Optional sliding window ("LAST n"): like FROM..TO but anchored to
  /// evaluation time — the aggregate covers the most recent n archived
  /// ticks. Mutually exclusive with FROM..TO.
  std::optional<int64_t> last_ticks;

  /// True when this query reads the archive (FROM..TO or LAST).
  bool IsHistorical() const {
    return from_time.has_value() || last_ticks.has_value();
  }

  Status Validate() const;
  std::string ToString() const;
};

/// Three-valued trigger answer under bounded uncertainty.
enum class TriggerState {
  kNo,     ///< Definitely not crossed (even at the error bound's edge).
  kMaybe,  ///< The bound straddles the threshold; can't say.
  kYes,    ///< Definitely crossed.
};

const char* TriggerStateName(TriggerState state);

/// One evaluation of a continuous query.
struct QueryResult {
  std::string name;
  double value = 0.0;   ///< The aggregate computed over cached predictions.
  double bound = 0.0;   ///< Guaranteed max |value - exact aggregate of
                        ///  the contract targets|.
  bool meets_within = true;  ///< bound <= spec.within (when within > 0).
  /// True when a member source has been silent longer than the server's
  /// staleness limit — the bound may then reflect a dead source rather
  /// than successful suppression, so the answer is advisory only.
  bool stale = false;
  /// True when a member source's replica is quarantined (suspected
  /// desync after losses): `bound` already includes the widened
  /// quarantine bound, so the answer stays honest but is degraded until
  /// the source resyncs.
  bool degraded = false;
  /// Worst filter-health verdict among member sources (kOk when the
  /// health watchdog is not enabled). Unlike `degraded` — which reports
  /// what the protocol *knows* went wrong (quarantine) — SUSPECT/DIVERGED
  /// reports what the watchdog *suspects* is wrong (statistically
  /// inconsistent filter), so the two flags are independent signals.
  obs::HealthState health = obs::HealthState::kOk;
  std::optional<TriggerState> trigger;

  std::string ToString() const;
};

/// Derives the answer error bound for an aggregate whose member sources
/// carry per-source precision bounds `member_bounds`:
///   VALUE: delta_1;  SUM: sum(delta_i);  AVG: sum(delta_i)/n;
///   MIN/MAX: max(delta_i).
double AggregateErrorBound(AggregateKind kind,
                           const std::vector<double>& member_bounds);

/// Combines member values under `kind` (plain arithmetic; bounds handled
/// separately by AggregateErrorBound).
double AggregateValues(AggregateKind kind, const std::vector<double>& values);

/// Classifies a bounded value against a threshold.
TriggerState EvaluateTrigger(double value, double bound, double threshold,
                             bool above);

}  // namespace kc

#endif  // KALMANCAST_SERVER_QUERY_H_
