#include "server/simulation.h"

#include <cmath>
#include <sstream>

#include "common/strings.h"

namespace kc {

namespace {

constexpr double kContractSlack = 1e-9;

double MaxAbsDiff(const Vector& a, const Vector& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

LinkReport RunLinkImpl(StreamGenerator& generator, const Predictor& prototype,
                       const LinkConfig& config,
                       std::vector<TrajectoryPoint>* trajectory) {
  generator.Reset(config.seed);

  Channel channel(config.channel);
  ServerReplica replica(/*source_id=*/0, prototype.Clone());
  channel.SetReceiver([&replica, &config](const Message& msg) {
    Status s = replica.OnMessage(msg);
    // Under a lossy channel a CORRECTION can outlive its lost INIT and be
    // rejected; the recovery protocol heals that via re-INIT, so rejects
    // are only fatal on the lossless configuration.
    assert(s.ok() || config.recovery.enabled);
    (void)s;
  });

  AgentConfig agent_config = config.agent;
  agent_config.delta = config.delta;
  SourceAgent agent(/*source_id=*/0, prototype.Clone(), agent_config, &channel);

  // Control downlink: replica-emitted RESYNC_REQUESTs reach the agent
  // through their own (possibly lossy) channel, so recovery traffic is
  // byte-accounted and fault-injected like everything else.
  Channel control_channel(config.control_channel);
  control_channel.SetReceiver([&agent](const Message& msg) {
    Status s = agent.OnControl(msg);
    assert(s.ok());
    (void)s;
  });
  if (config.recovery.enabled) {
    replica.SetRecovery(config.recovery);
    replica.SetControlSender([&control_channel](const Message& msg) {
      // A failed request is just a lost request; backoff retries it.
      Status s = control_channel.Send(msg);
      (void)s;
    });
  }

  // Optional black box + watchdog, shared by both ends of the link (the
  // whole link runs on this one thread, so the single-writer contract
  // holds trivially).
  std::optional<obs::FlightRecorder> recorder;
  std::optional<obs::HealthMonitor> health;
  obs::SourceRecorder* ring = nullptr;
  obs::SourceHealth* health_entry = nullptr;
  if (config.flight_recorder_capacity > 0) {
    recorder.emplace(config.flight_recorder_capacity);
    ring = recorder->ForSource(0);
  }
  if (config.health) {
    health.emplace(config.health_config);
    if (recorder.has_value()) health->BindRecorder(&*recorder);
    health_entry = health->ForSource(0, prototype.dims());
  }
  if (ring != nullptr || health_entry != nullptr) {
    agent.BindObservability(ring, health_entry);
    replica.BindObservability(ring, health_entry);
  }

  std::optional<BudgetController> budget;
  if (config.budget.has_value()) budget.emplace(*config.budget);

  LinkReport report;
  report.policy = prototype.name();
  report.stream = generator.name();
  report.delta = config.delta;
  report.ticks = static_cast<int64_t>(config.ticks);

  for (size_t i = 0; i < config.ticks; ++i) {
    Sample sample = generator.Next();
    int64_t messages_before =
        channel.stats().messages_sent - agent.stats().heartbeats;

    // Server first (its replica advances on the tick boundary), in-flight
    // deliveries next (latency mode), then the source decides; with zero
    // latency, delivery is synchronous inside Offer, mirroring the
    // paper's lockstep protocol.
    replica.Tick();
    channel.AdvanceTick();
    control_channel.AdvanceTick();
    Status s = agent.Offer(sample.measured);
    assert(s.ok());
    (void)s;
    if (replica.desynced()) ++report.degraded_ticks;

    double in_force_delta = agent.delta();
    if (replica.initialized()) {
      Vector view = replica.Value();
      double target_err = MaxAbsDiff(view, agent.ContractTarget());
      double measured_err = MaxAbsDiff(view, sample.measured.value);
      double truth_err = MaxAbsDiff(view, sample.truth.value);
      report.err_vs_target.Add(target_err);
      report.err_vs_measured.Add(measured_err);
      report.err_vs_truth.Add(truth_err);
      if (target_err > in_force_delta + kContractSlack) {
        ++report.contract_violations;
      }
      if (trajectory != nullptr) {
        TrajectoryPoint p;
        p.time = sample.truth.time;
        p.truth = sample.truth.scalar();
        p.measured = sample.measured.scalar();
        p.server_view = view.empty() ? 0.0 : view[0];
        p.delta = in_force_delta;
        int64_t messages_now =
            channel.stats().messages_sent - agent.stats().heartbeats;
        p.message_sent = messages_now > messages_before;
        p.cumulative_messages = messages_now;
        trajectory->push_back(p);
      }
    }

    if (budget.has_value()) budget->OnTick(&agent);
  }

  report.agent = agent.stats();
  report.net = channel.stats();
  report.control_net = control_channel.stats();
  report.gaps = replica.gaps();
  report.resyncs_requested = replica.resyncs_requested();
  report.resyncs_served = agent.stats().resyncs_served;
  report.messages = channel.stats().messages_sent - agent.stats().heartbeats;
  report.bytes = channel.stats().bytes_sent;
  report.messages_per_tick =
      static_cast<double>(report.messages) / static_cast<double>(config.ticks);
  report.final_delta = agent.delta();
  if (health.has_value()) {
    report.health = health->StateOf(0);
    report.health_summary = health->SummaryText();
  }
  if (recorder.has_value()) report.black_box = recorder->DumpText(0);
  return report;
}

}  // namespace

std::string LinkReport::ToString() const {
  std::ostringstream os;
  os << policy << " on " << stream << " delta=" << delta << ": "
     << messages << " msgs (" << StrFormat("%.4f", messages_per_tick)
     << "/tick), " << bytes << " B, err(target) mean="
     << StrFormat("%.4g", err_vs_target.mean())
     << " max=" << StrFormat("%.4g", err_vs_target.max())
     << ", violations=" << contract_violations;
  if (gaps > 0 || resyncs_requested > 0) {
    os << ", gaps=" << gaps << " resyncs=" << resyncs_requested << "/"
       << resyncs_served << " degraded_ticks=" << degraded_ticks;
  }
  if (health != obs::HealthState::kOk) {
    os << ", health=" << obs::HealthStateName(health);
  }
  return os.str();
}

LinkReport RunLink(StreamGenerator& generator, const Predictor& prototype,
                   const LinkConfig& config) {
  return RunLinkImpl(generator, prototype, config, nullptr);
}

LinkReport RunLinkTraced(StreamGenerator& generator, const Predictor& prototype,
                         const LinkConfig& config,
                         std::vector<TrajectoryPoint>* trajectory) {
  return RunLinkImpl(generator, prototype, config, trajectory);
}

Fleet::Fleet() : Fleet(Config()) {}

Fleet::Fleet(Config config) : config_(config) {
  // Control downlink: route SET_BOUND pushes to the addressed source's
  // control channel.
  server_.SetControlSink([this](const Message& msg) -> Status {
    auto idx = static_cast<size_t>(msg.source_id);
    if (idx >= sources_.size()) {
      return Status::NotFound("control message for unknown source");
    }
    return sources_[idx]->control_channel->Send(msg);
  });
  if (config_.recovery.enabled) server_.SetRecovery(config_.recovery);
}

int32_t Fleet::AddSource(std::unique_ptr<StreamGenerator> generator,
                         std::unique_ptr<Predictor> predictor, double delta) {
  auto id = static_cast<int32_t>(sources_.size());
  auto slot = std::make_unique<SourceSlot>();

  slot->generator = std::move(generator);
  slot->generator->Reset(SourceGeneratorSeed(config_.seed, id));

  Channel::Config channel_config = config_.channel;
  channel_config.seed = SourceUplinkSeed(config_.seed, id);
  slot->channel = std::make_unique<Channel>(channel_config);
  StreamServer* server = &server_;
  const bool recovering = config_.recovery.enabled;
  slot->channel->SetReceiver([server, recovering](const Message& msg) {
    Status s = server->OnMessage(msg);
    // With recovery on, a CORRECTION outliving its lost INIT is rejected
    // here and healed later by re-INIT — not a programming error.
    assert(s.ok() || recovering);
    (void)s;
  });

  Status reg = server_.RegisterSource(id, predictor->Clone());
  assert(reg.ok());
  (void)reg;

  AgentConfig agent_config = config_.agent_base;
  agent_config.delta = delta;
  slot->agent = std::make_unique<SourceAgent>(id, std::move(predictor),
                                              agent_config, slot->channel.get());

  // Downlink for server-pushed bound changes and resync requests.
  Channel::Config control_config = config_.control_channel;
  control_config.seed = SourceControlSeed(config_.seed, id);
  slot->control_channel = std::make_unique<Channel>(control_config);
  SourceAgent* agent = slot->agent.get();
  slot->control_channel->SetReceiver([agent](const Message& msg) {
    Status s = agent->OnControl(msg);
    assert(s.ok());
    (void)s;
  });

  sources_.push_back(std::move(slot));
  return id;
}

Status Fleet::Step() {
  server_.Tick();
  for (auto& slot : sources_) {
    slot->channel->AdvanceTick();
    slot->control_channel->AdvanceTick();
    slot->last_sample = slot->generator->Next();
    KC_RETURN_IF_ERROR(slot->agent->Offer(slot->last_sample.measured));
  }
  ++ticks_;
  return Status::Ok();
}

Status Fleet::Run(size_t ticks) {
  for (size_t i = 0; i < ticks; ++i) {
    KC_RETURN_IF_ERROR(Step());
  }
  return Status::Ok();
}

int64_t Fleet::MessagesOf(int32_t id) const {
  const AgentStats& s = sources_[id]->agent->stats();
  return s.corrections + s.full_syncs + 1;  // +1 for INIT.
}

int64_t Fleet::TotalMessages() const {
  int64_t total = 0;
  for (const auto& slot : sources_) {
    total += slot->channel->stats().messages_sent;
  }
  return total;
}

int64_t Fleet::TotalBytes() const {
  int64_t total = 0;
  for (const auto& slot : sources_) {
    total += slot->channel->stats().bytes_sent;
  }
  return total;
}

int64_t Fleet::TotalControlMessages() const {
  int64_t total = 0;
  for (const auto& slot : sources_) {
    total += slot->control_channel->stats().messages_sent;
  }
  return total;
}

}  // namespace kc
