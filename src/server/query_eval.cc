#include "server/query_eval.h"

#include <algorithm>

#include "common/strings.h"

namespace kc {

Status ValidateSpecSources(const SourceView& view, const QuerySpec& spec) {
  for (int32_t id : spec.sources) {
    const ServerReplica* replica = view.replica(id);
    if (replica == nullptr) {
      return Status::NotFound(
          StrFormat("query references unknown source %d", id));
    }
    if (replica->predictor().dims() != 1) {
      return Status::InvalidArgument(
          StrFormat("source %d is not scalar; aggregates need scalar "
                    "sources",
                    id));
    }
  }
  return Status::Ok();
}

StatusOr<QueryResult> EvaluateSpecOn(const SourceView& view,
                                     const QuerySpec& spec,
                                     const std::string& name) {
  KC_RETURN_IF_ERROR(spec.Validate());
  if (spec.IsHistorical()) {
    auto archive = view.Archive(spec.sources.front());
    if (!archive.ok()) return archive.status();
    double from;
    double to;
    if (spec.last_ticks.has_value()) {
      // LAST n anchors to evaluation time: the most recent n archived
      // ticks. When n exceeds the recorded history the naive
      // ticks - n + 1 goes negative; clamp to the archive's oldest time.
      to = static_cast<double>(view.ticks());
      from = static_cast<double>(view.ticks() - *spec.last_ticks + 1);
      from = std::max(from, (*archive)->oldest_time());
    } else {
      from = *spec.from_time;
      to = *spec.to_time;
    }
    auto result = (*archive)->Aggregate(spec.kind, from, to);
    if (!result.ok()) return result.status();
    result->name = name;
    result->meets_within = spec.within <= 0.0 || result->bound <= spec.within;
    if (spec.threshold.has_value()) {
      result->trigger = EvaluateTrigger(result->value, result->bound,
                                        *spec.threshold, spec.above);
    }
    return result;
  }
  std::vector<double> values;
  std::vector<double> bounds;
  values.reserve(spec.sources.size());
  bounds.reserve(spec.sources.size());
  for (int32_t id : spec.sources) {
    auto answer = view.SourceValue(id);
    if (!answer.ok()) return answer.status();
    if (answer->value.size() != 1) {
      return Status::InvalidArgument(StrFormat("source %d is not scalar", id));
    }
    values.push_back(answer->value[0]);
    bounds.push_back(answer->bound);
  }
  QueryResult result;
  result.name = name;
  result.value = AggregateValues(spec.kind, values);
  result.bound = AggregateErrorBound(spec.kind, bounds);
  result.meets_within = spec.within <= 0.0 || result.bound <= spec.within;
  for (int32_t id : spec.sources) {
    if (view.IsStale(id)) {
      result.stale = true;
      break;
    }
  }
  for (int32_t id : spec.sources) {
    if (view.IsDesynced(id)) {
      result.degraded = true;
      break;
    }
  }
  for (int32_t id : spec.sources) {
    result.health = std::max(result.health, view.HealthOf(id));
    if (result.health == obs::HealthState::kDiverged) break;
  }
  if (spec.threshold.has_value()) {
    result.trigger =
        EvaluateTrigger(result.value, result.bound, *spec.threshold,
                        spec.above);
  }
  return result;
}

Status QueryTable::Add(const SourceView& view, const std::string& name,
                       QuerySpec spec) {
  KC_RETURN_IF_ERROR(spec.Validate());
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("query name taken: " + name);
  }
  KC_RETURN_IF_ERROR(ValidateSpecSources(view, spec));
  entries_[name] = Entry{std::move(spec), -1};
  return Status::Ok();
}

Status QueryTable::Remove(const std::string& name) {
  if (entries_.erase(name) == 0) {
    return Status::NotFound("unknown query: " + name);
  }
  return Status::Ok();
}

StatusOr<QuerySpec> QueryTable::Get(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown query: " + name);
  }
  return it->second.spec;
}

StatusOr<QueryResult> QueryTable::Evaluate(const SourceView& view,
                                           const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown query: " + name);
  }
  return EvaluateSpecOn(view, it->second.spec, name);
}

std::vector<QueryResult> QueryTable::EvaluateAll(const SourceView& view) const {
  std::vector<QueryResult> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    auto result = EvaluateSpecOn(view, entry.spec, name);
    if (result.ok()) {
      out.push_back(*result);
    } else {
      QueryResult failed;
      failed.name = name + " (error: " + result.status().ToString() + ")";
      out.push_back(failed);
    }
  }
  return out;
}

std::vector<QueryResult> QueryTable::EvaluateDue(const SourceView& view) {
  std::vector<QueryResult> out;
  for (auto& [name, entry] : entries_) {
    if (entry.last_due_eval >= 0 &&
        view.ticks() - entry.last_due_eval < entry.spec.every) {
      continue;
    }
    auto result = EvaluateSpecOn(view, entry.spec, name);
    if (result.ok()) {
      entry.last_due_eval = view.ticks();
      out.push_back(*result);
    }
    // Unevaluable queries (uninitialized sources) stay due and retry on
    // the next tick rather than silently skipping a period.
  }
  return out;
}

std::vector<std::string> QueryTable::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

}  // namespace kc
