#ifndef KALMANCAST_SERVER_VOLATILITY_H_
#define KALMANCAST_SERVER_VOLATILITY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "server/archive.h"

namespace kc {

/// Estimates each source's per-tick volatility (stddev of first
/// differences) from the server's own archive — no client cooperation,
/// no extra communication. Feeds AllocateBounds'
/// kVarianceProportional policy when the deployment cannot pre-profile
/// its sources.
///
/// The estimate is computed over archived *server views*, which move in
/// steps (corrections) rather than smoothly; over windows much longer
/// than the correction interval the first-difference stddev still ranks
/// sources by volatility correctly, which is all allocation needs.
class VolatilityEstimator {
 public:
  /// Estimates from the most recent `window` points of `archive`
  /// (needs at least 3 points in range). Returns the per-tick stddev of
  /// value changes.
  static StatusOr<double> FromArchive(const TickArchive& archive,
                                      size_t window);

  /// Convenience: volatility estimates for several archives at once.
  /// Archives with insufficient data get `fallback`.
  static std::vector<double> FromArchives(
      const std::vector<const TickArchive*>& archives, size_t window,
      double fallback = 1e-3);
};

}  // namespace kc

#endif  // KALMANCAST_SERVER_VOLATILITY_H_
