#include "server/archive.h"

#include <algorithm>
#include <cassert>

namespace kc {

TickArchive::TickArchive(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  points_.reserve(capacity_);
}

void TickArchive::Record(double time, double value, double bound) {
  assert(empty() || time >= newest_time());
  if (points_.size() < capacity_) {
    points_.push_back({time, value, bound});
  } else {
    points_[head_] = {time, value, bound};
    head_ = (head_ + 1) % capacity_;
  }
  ++total_recorded_;
}

double TickArchive::oldest_time() const {
  return empty() ? 0.0 : Get(0).time;
}

double TickArchive::newest_time() const {
  return empty() ? 0.0 : Get(points_.size() - 1).time;
}

std::vector<TickArchive::Point> TickArchive::Range(double t0, double t1) const {
  std::vector<Point> out;
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& p = Get(i);
    if (p.time < t0) continue;
    if (p.time > t1) break;  // Times are non-decreasing.
    out.push_back(p);
  }
  return out;
}

StatusOr<QueryResult> TickArchive::Aggregate(AggregateKind kind, double t0,
                                             double t1) const {
  std::vector<Point> range = Range(t0, t1);
  if (range.empty()) {
    return Status::NotFound("no archived points in range");
  }
  QueryResult result;
  result.name = "historical";
  switch (kind) {
    case AggregateKind::kValue: {
      result.value = range.back().value;
      result.bound = range.back().bound;
      break;
    }
    case AggregateKind::kSum: {
      for (const Point& p : range) {
        result.value += p.value;
        result.bound += p.bound;
      }
      break;
    }
    case AggregateKind::kAvg: {
      for (const Point& p : range) {
        result.value += p.value;
        result.bound += p.bound;
      }
      result.value /= static_cast<double>(range.size());
      result.bound /= static_cast<double>(range.size());
      break;
    }
    case AggregateKind::kMin: {
      result.value = range.front().value;
      for (const Point& p : range) {
        result.value = std::min(result.value, p.value);
        result.bound = std::max(result.bound, p.bound);
      }
      break;
    }
    case AggregateKind::kMax: {
      result.value = range.front().value;
      for (const Point& p : range) {
        result.value = std::max(result.value, p.value);
        result.bound = std::max(result.bound, p.bound);
      }
      break;
    }
  }
  return result;
}

}  // namespace kc
