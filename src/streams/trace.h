#ifndef KALMANCAST_STREAMS_TRACE_H_
#define KALMANCAST_STREAMS_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "streams/generator.h"

namespace kc {

/// Materializes `count` samples from a generator (which is Reset(seed)
/// first) into a trace.
std::vector<Sample> Materialize(StreamGenerator& gen, size_t count,
                                uint64_t seed);

/// Writes a trace as CSV: header then one row per sample
/// (seq,time,truth_0..truth_{d-1},meas_0..meas_{d-1}).
Status SaveTraceCsv(const std::string& path, const std::vector<Sample>& trace);

/// Reads a trace written by SaveTraceCsv (or any CSV with the same layout,
/// which is how real-world traces are dropped into the benchmark suite).
StatusOr<std::vector<Sample>> LoadTraceCsv(const std::string& path);

/// Generator that replays a materialized trace. Next() past the end clamps
/// to the final sample (streams never "run out" mid-experiment); Reset
/// rewinds to the start (the seed is ignored — traces are already fixed).
class ReplayGenerator : public StreamGenerator {
 public:
  ReplayGenerator(std::vector<Sample> trace, std::string name);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override;
  std::string name() const override { return name_; }
  std::unique_ptr<StreamGenerator> Clone() const override;

  size_t size() const { return trace_.size(); }
  bool exhausted() const { return pos_ >= trace_.size(); }

 private:
  std::vector<Sample> trace_;
  std::string name_;
  size_t pos_ = 0;
};

}  // namespace kc

#endif  // KALMANCAST_STREAMS_TRACE_H_
