#include "streams/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace kc {

namespace {

/// Builds a Sample whose measurement equals the truth (noise is layered on
/// by NoisyStream when wanted).
Sample MakeScalarSample(int64_t seq, double time, double value) {
  Sample s;
  s.truth.seq = seq;
  s.truth.time = time;
  s.truth.value = Vector{value};
  s.measured = s.truth;
  return s;
}

Sample MakePlanarSample(int64_t seq, double time, double x, double y) {
  Sample s;
  s.truth.seq = seq;
  s.truth.time = time;
  s.truth.value = Vector{x, y};
  s.measured = s.truth;
  return s;
}

}  // namespace

// ---------------------------------------------------------------- RandomWalk

RandomWalkGenerator::RandomWalkGenerator(Config config)
    : config_(config), rng_(config.seed), x_(config.start) {}

Sample RandomWalkGenerator::Next() {
  double time = static_cast<double>(seq_) * config_.dt;
  Sample s = MakeScalarSample(seq_, time, x_);
  x_ += config_.drift * config_.dt + rng_.Gaussian(0.0, config_.step_sigma);
  ++seq_;
  return s;
}

void RandomWalkGenerator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  x_ = config_.start;
}

std::unique_ptr<StreamGenerator> RandomWalkGenerator::Clone() const {
  return std::make_unique<RandomWalkGenerator>(config_);
}

// --------------------------------------------------------------- LinearDrift

LinearDriftGenerator::LinearDriftGenerator(Config config)
    : config_(config), rng_(config.seed) {}

Sample LinearDriftGenerator::Next() {
  double time = static_cast<double>(seq_) * config_.dt;
  double value = config_.start + config_.slope * time + wobble_;
  Sample s = MakeScalarSample(seq_, time, value);
  wobble_ += rng_.Gaussian(0.0, config_.wobble_sigma);
  ++seq_;
  return s;
}

void LinearDriftGenerator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  wobble_ = 0.0;
}

std::unique_ptr<StreamGenerator> LinearDriftGenerator::Clone() const {
  return std::make_unique<LinearDriftGenerator>(config_);
}

// ------------------------------------------------------------------ Sinusoid

SinusoidGenerator::SinusoidGenerator(Config config)
    : config_(config), rng_(config.seed), amplitude_(config.amplitude) {}

Sample SinusoidGenerator::Next() {
  double time = static_cast<double>(seq_) * config_.dt;
  double angle = 2.0 * std::numbers::pi * time / config_.period + config_.phase;
  double value = config_.offset + amplitude_ * std::sin(angle);
  Sample s = MakeScalarSample(seq_, time, value);
  if (config_.amplitude_drift_sigma > 0.0) {
    amplitude_ += rng_.Gaussian(0.0, config_.amplitude_drift_sigma);
    amplitude_ = std::max(amplitude_, 0.0);
  }
  ++seq_;
  return s;
}

void SinusoidGenerator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  amplitude_ = config_.amplitude;
}

std::unique_ptr<StreamGenerator> SinusoidGenerator::Clone() const {
  return std::make_unique<SinusoidGenerator>(config_);
}

// ----------------------------------------------------------------------- AR1

Ar1Generator::Ar1Generator(Config config)
    : config_(config), rng_(config.seed), x_(config.mean) {}

Sample Ar1Generator::Next() {
  double time = static_cast<double>(seq_) * config_.dt;
  Sample s = MakeScalarSample(seq_, time, x_);
  x_ = config_.mean + config_.phi * (x_ - config_.mean) +
       rng_.Gaussian(0.0, config_.sigma);
  ++seq_;
  return s;
}

void Ar1Generator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  x_ = config_.mean;
}

std::unique_ptr<StreamGenerator> Ar1Generator::Clone() const {
  return std::make_unique<Ar1Generator>(config_);
}

// ------------------------------------------------------------ RegimeSwitching

RegimeSwitchingGenerator::RegimeSwitchingGenerator(Config config)
    : config_(std::move(config)), rng_(config_.seed), x_(config_.start) {
  assert(!config_.regimes.empty());
}

Sample RegimeSwitchingGenerator::Next() {
  const Regime& regime = config_.regimes[regime_];
  double time = static_cast<double>(seq_) * config_.dt;
  Sample s = MakeScalarSample(seq_, time, x_);
  x_ += regime.drift * config_.dt + rng_.Gaussian(0.0, regime.step_sigma);
  ++seq_;
  if (++ticks_in_regime_ >= regime.length_ticks) {
    ticks_in_regime_ = 0;
    regime_ = (regime_ + 1) % config_.regimes.size();
  }
  return s;
}

void RegimeSwitchingGenerator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  ticks_in_regime_ = 0;
  regime_ = 0;
  x_ = config_.start;
}

std::unique_ptr<StreamGenerator> RegimeSwitchingGenerator::Clone() const {
  return std::make_unique<RegimeSwitchingGenerator>(config_);
}

// ------------------------------------------------------------- BurstyTraffic

BurstyTrafficGenerator::BurstyTrafficGenerator(Config config)
    : config_(config), rng_(config.seed), level_(config.base_rate) {}

Sample BurstyTrafficGenerator::Next() {
  double time = static_cast<double>(seq_) * config_.dt;
  Sample s = MakeScalarSample(seq_, time, level_);

  // ON/OFF Markov chain with Pareto burst magnitudes.
  if (in_burst_) {
    if (rng_.Bernoulli(config_.burst_end_prob)) {
      in_burst_ = false;
      burst_level_ = 0.0;
    }
  } else if (rng_.Bernoulli(config_.burst_start_prob)) {
    in_burst_ = true;
    burst_level_ = rng_.Pareto(config_.pareto_scale, config_.pareto_shape);
  }
  double raw = config_.base_rate + burst_level_ +
               rng_.Gaussian(0.0, config_.jitter_sigma);
  raw = std::max(raw, 0.0);
  level_ = config_.smoothing * level_ + (1.0 - config_.smoothing) * raw;
  ++seq_;
  return s;
}

void BurstyTrafficGenerator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  in_burst_ = false;
  burst_level_ = 0.0;
  level_ = config_.base_rate;
}

std::unique_ptr<StreamGenerator> BurstyTrafficGenerator::Clone() const {
  return std::make_unique<BurstyTrafficGenerator>(config_);
}

// ------------------------------------------------------- DiurnalTemperature

DiurnalTemperatureGenerator::DiurnalTemperatureGenerator(Config config)
    : config_(config), rng_(config.seed) {}

Sample DiurnalTemperatureGenerator::Next() {
  double time = static_cast<double>(seq_) * config_.dt;
  double angle = 2.0 * std::numbers::pi * time / config_.day_length;
  // Coldest at "dawn" (angle 0 shifted), warmest mid-"day".
  double value = config_.mean +
                 config_.daily_amplitude * std::sin(angle - std::numbers::pi / 2.0) +
                 weather_;
  Sample s = MakeScalarSample(seq_, time, value);
  weather_ = config_.weather_decay * weather_ +
             rng_.Gaussian(0.0, config_.weather_sigma);
  ++seq_;
  return s;
}

void DiurnalTemperatureGenerator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  weather_ = 0.0;
}

std::unique_ptr<StreamGenerator> DiurnalTemperatureGenerator::Clone() const {
  return std::make_unique<DiurnalTemperatureGenerator>(config_);
}

// ----------------------------------------------------------------- Vehicle2D

Vehicle2DGenerator::Vehicle2DGenerator(Config config)
    : config_(config), rng_(config.seed), speed_(config.speed_mean) {}

Sample Vehicle2DGenerator::Next() {
  double time = static_cast<double>(seq_) * config_.dt;
  Sample s = MakePlanarSample(seq_, time, x_, y_);

  // Occasionally pick a new maneuver (turn rate), otherwise jitter it.
  if (rng_.Bernoulli(config_.turn_change_prob)) {
    turn_rate_ = rng_.Uniform(-config_.max_turn_rate, config_.max_turn_rate);
  } else {
    turn_rate_ += rng_.Gaussian(0.0, config_.turn_rate_sigma);
    turn_rate_ = std::clamp(turn_rate_, -config_.max_turn_rate,
                            config_.max_turn_rate);
  }
  heading_ += turn_rate_ * config_.dt;
  speed_ += rng_.Gaussian(0.0, config_.speed_sigma);
  speed_ = std::clamp(speed_, 0.0, 2.0 * config_.speed_mean);
  x_ += speed_ * std::cos(heading_) * config_.dt;
  y_ += speed_ * std::sin(heading_) * config_.dt;
  ++seq_;
  return s;
}

void Vehicle2DGenerator::Reset(uint64_t seed) {
  rng_.Seed(seed);
  seq_ = 0;
  x_ = y_ = 0.0;
  heading_ = 0.0;
  turn_rate_ = 0.0;
  speed_ = config_.speed_mean;
}

std::unique_ptr<StreamGenerator> Vehicle2DGenerator::Clone() const {
  return std::make_unique<Vehicle2DGenerator>(config_);
}

}  // namespace kc
