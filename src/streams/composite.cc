#include "streams/composite.h"

#include <cassert>

namespace kc {

SumGenerator::SumGenerator(
    std::vector<std::unique_ptr<StreamGenerator>> components, std::string name)
    : components_(std::move(components)), name_(std::move(name)) {
  assert(!components_.empty());
  for (const auto& c : components_) {
    assert(c != nullptr && c->dims() == 1 && "SumGenerator is scalar-only");
    (void)c;
  }
}

Sample SumGenerator::Next() {
  Sample out = components_.front()->Next();
  for (size_t i = 1; i < components_.size(); ++i) {
    Sample part = components_[i]->Next();
    out.truth.value[0] += part.truth.scalar();
  }
  out.measured = out.truth;
  return out;
}

void SumGenerator::Reset(uint64_t seed) {
  for (size_t i = 0; i < components_.size(); ++i) {
    components_[i]->Reset(seed + 0x9E3779B9ULL * (i + 1));
  }
}

std::unique_ptr<StreamGenerator> SumGenerator::Clone() const {
  std::vector<std::unique_ptr<StreamGenerator>> clones;
  clones.reserve(components_.size());
  for (const auto& c : components_) clones.push_back(c->Clone());
  return std::make_unique<SumGenerator>(std::move(clones), name_);
}

ScaledGenerator::ScaledGenerator(std::unique_ptr<StreamGenerator> inner,
                                 double scale, double offset)
    : inner_(std::move(inner)), scale_(scale), offset_(offset) {
  assert(inner_ != nullptr && inner_->dims() == 1);
}

Sample ScaledGenerator::Next() {
  Sample s = inner_->Next();
  s.truth.value[0] = scale_ * s.truth.scalar() + offset_;
  s.measured = s.truth;
  return s;
}

void ScaledGenerator::Reset(uint64_t seed) { inner_->Reset(seed); }

std::unique_ptr<StreamGenerator> ScaledGenerator::Clone() const {
  return std::make_unique<ScaledGenerator>(inner_->Clone(), scale_, offset_);
}

}  // namespace kc
