#ifndef KALMANCAST_STREAMS_GENERATORS_H_
#define KALMANCAST_STREAMS_GENERATORS_H_

#include <vector>

#include "common/rng.h"
#include "streams/generator.h"

namespace kc {

/// Scalar random walk: x_{k+1} = x_k + drift*dt + N(0, step_sigma^2).
/// The canonical "unknown dynamics" stream; matches the random-walk
/// state-space model exactly, so it calibrates the whole pipeline.
class RandomWalkGenerator : public StreamGenerator {
 public:
  struct Config {
    double start = 0.0;
    double step_sigma = 1.0;
    double drift = 0.0;
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit RandomWalkGenerator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return "random_walk"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  double x_;
};

/// Linear trend plus a small random-walk wobble:
/// x(t) = start + slope*t + w(t). Dead-reckoning's best case; exposes how
/// much of the Kalman advantage survives when a linear predictor is ideal.
class LinearDriftGenerator : public StreamGenerator {
 public:
  struct Config {
    double start = 0.0;
    double slope = 0.5;
    double wobble_sigma = 0.05;
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit LinearDriftGenerator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return "linear_drift"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  double wobble_ = 0.0;
};

/// Sinusoid with slowly drifting amplitude:
/// x(t) = offset + A(t) * sin(2*pi*t/period + phase). Models periodic
/// signals (daily load, temperature cycles) where value caching thrashes
/// on every slope change.
class SinusoidGenerator : public StreamGenerator {
 public:
  struct Config {
    double offset = 0.0;
    double amplitude = 10.0;
    double period = 200.0;  ///< In time units.
    double phase = 0.0;
    double amplitude_drift_sigma = 0.0;
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit SinusoidGenerator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return "sinusoid"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  double amplitude_;
};

/// Mean-reverting AR(1): x_{k+1} = mean + phi*(x_k - mean) + N(0, sigma^2).
class Ar1Generator : public StreamGenerator {
 public:
  struct Config {
    double mean = 0.0;
    double phi = 0.95;  ///< |phi| < 1 for stationarity.
    double sigma = 1.0;
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit Ar1Generator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return "ar1"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  double x_;
};

/// One volatility regime of a RegimeSwitchingGenerator.
struct Regime {
  int64_t length_ticks = 1000;
  double step_sigma = 1.0;
  double drift = 0.0;
};

/// Random walk whose (sigma, drift) switch on a schedule, cycling through
/// `regimes`. The adaptation experiment (E5) uses this to show the
/// adaptive Kalman filter re-learning stream dynamics after a shift.
class RegimeSwitchingGenerator : public StreamGenerator {
 public:
  struct Config {
    double start = 0.0;
    std::vector<Regime> regimes = {{1000, 0.2, 0.0}, {1000, 2.0, 0.0}};
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit RegimeSwitchingGenerator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return "regime_switching"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

  /// Index of the regime that produced the most recent sample.
  size_t current_regime() const { return regime_; }

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  int64_t ticks_in_regime_ = 0;
  size_t regime_ = 0;
  double x_;
};

/// Self-similar network-traffic-like stream: an ON/OFF Markov modulated
/// rate with Pareto-distributed burst intensities, lightly smoothed.
/// Stands in for the paper's real IP-traffic traces (see DESIGN.md
/// substitutions table).
class BurstyTrafficGenerator : public StreamGenerator {
 public:
  struct Config {
    double base_rate = 10.0;       ///< OFF-state rate level.
    double burst_start_prob = 0.02;
    double burst_end_prob = 0.10;
    double pareto_scale = 5.0;     ///< Burst magnitude scale (xm).
    double pareto_shape = 1.5;     ///< Tail index (heavier when smaller).
    double smoothing = 0.5;        ///< EWMA applied to the raw rate.
    double jitter_sigma = 0.5;     ///< Per-tick rate jitter.
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit BurstyTrafficGenerator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return "bursty_traffic"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  bool in_burst_ = false;
  double burst_level_ = 0.0;
  double level_;
};

/// Diurnal temperature: daily sinusoid + slow weather-front random walk.
/// Stands in for the paper's real sensor traces.
class DiurnalTemperatureGenerator : public StreamGenerator {
 public:
  struct Config {
    double mean = 18.0;             ///< Long-run average, degrees C.
    double daily_amplitude = 6.0;
    double day_length = 288.0;      ///< Ticks per day (5-min samples).
    double weather_sigma = 0.05;    ///< Per-tick front drift.
    double weather_decay = 0.999;   ///< Mean reversion of the front.
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit DiurnalTemperatureGenerator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return "diurnal_temperature"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  double weather_ = 0.0;
};

/// Planar vehicle trajectory [x, y]: constant speed with a slowly varying
/// heading (random turn-rate changes). Stands in for the paper's GPS /
/// moving-object traces; pairs with the 2-D constant-velocity model.
class Vehicle2DGenerator : public StreamGenerator {
 public:
  struct Config {
    double speed_mean = 10.0;
    double speed_sigma = 0.5;        ///< Per-tick speed jitter.
    double turn_rate_sigma = 0.02;   ///< Radians/tick jitter on heading rate.
    double turn_change_prob = 0.01;  ///< Chance of a new maneuver per tick.
    double max_turn_rate = 0.15;     ///< Radians/tick cap.
    double dt = 1.0;
    uint64_t seed = 1;
  };

  explicit Vehicle2DGenerator(Config config);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 2; }
  std::string name() const override { return "vehicle_2d"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  Config config_;
  Rng rng_;
  int64_t seq_ = 0;
  double x_ = 0.0;
  double y_ = 0.0;
  double heading_ = 0.0;
  double turn_rate_ = 0.0;
  double speed_;
};

}  // namespace kc

#endif  // KALMANCAST_STREAMS_GENERATORS_H_
