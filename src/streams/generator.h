#ifndef KALMANCAST_STREAMS_GENERATOR_H_
#define KALMANCAST_STREAMS_GENERATOR_H_

#include <memory>
#include <string>

#include "streams/reading.h"

namespace kc {

/// Interface for stream sources. Implementations are deterministic under
/// Reset(seed): the same seed yields the same sample sequence, which is what
/// makes every experiment in bench/ reproducible.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  /// Produces the next sample (ground truth + measurement).
  virtual Sample Next() = 0;

  /// Restarts the stream from the beginning with the given seed.
  virtual void Reset(uint64_t seed) = 0;

  /// Dimensionality of the produced values.
  virtual size_t dims() const = 0;

  /// Human-readable family name ("random_walk", "vehicle_2d", ...).
  virtual std::string name() const = 0;

  /// Deep copy (same configuration and current RNG/seed state at the time
  /// of the call is NOT preserved — clones must be Reset before use).
  virtual std::unique_ptr<StreamGenerator> Clone() const = 0;
};

}  // namespace kc

#endif  // KALMANCAST_STREAMS_GENERATOR_H_
