#ifndef KALMANCAST_STREAMS_RESAMPLE_H_
#define KALMANCAST_STREAMS_RESAMPLE_H_

#include <vector>

#include "common/status.h"
#include "streams/reading.h"

namespace kc {

/// Resamples an irregularly-timed trace onto a uniform grid.
///
/// Real exported streams rarely tick uniformly (sensor duty cycles, GPS
/// dropouts), but the suppression protocol and the bundled discrete
/// models assume a fixed dt. ResampleTrace linearly interpolates both
/// truth and measurement onto t0, t0+dt, t0+2dt, ..., covering the input
/// span; sequence numbers are renumbered from 0.
///
/// Requirements: at least two samples, strictly increasing times, dt > 0.
/// Values are interpolated per dimension; a grid point beyond the final
/// input time is clamped to the last sample (at most one such point,
/// from floating-point edge effects).
StatusOr<std::vector<Sample>> ResampleTrace(const std::vector<Sample>& trace,
                                            double dt);

/// Drops samples whose timestamps are non-increasing relative to the
/// previous *kept* sample — the standard cleanup for merged/battery-
/// glitched sensor exports. Returns the number of dropped samples via
/// `dropped` (optional).
std::vector<Sample> DropNonMonotonic(const std::vector<Sample>& trace,
                                     size_t* dropped = nullptr);

}  // namespace kc

#endif  // KALMANCAST_STREAMS_RESAMPLE_H_
