#ifndef KALMANCAST_STREAMS_NOISE_H_
#define KALMANCAST_STREAMS_NOISE_H_

#include <memory>

#include "common/rng.h"
#include "streams/generator.h"

namespace kc {

/// Measurement-noise model applied on top of a ground-truth stream.
struct NoiseConfig {
  /// Standard deviation of additive i.i.d. Gaussian sensor noise (applied
  /// per dimension).
  double gaussian_sigma = 0.0;
  /// Probability of replacing a sample with an outlier.
  double outlier_prob = 0.0;
  /// Outlier magnitude: uniform in +/- [gaussian_sigma*outlier_scale].
  double outlier_scale = 10.0;
  /// Probability a measurement is dropped entirely (sensor glitch). The
  /// generator then repeats the previous *measured* value, which is how
  /// cheap sensors actually behave.
  double stuck_prob = 0.0;
};

/// Decorator that layers sensor noise on another generator's ground truth.
/// Keeps truth intact in the emitted Sample so the experiment harness can
/// report errors against reality, exactly what the paper's noisy-stream
/// experiments need.
class NoisyStream : public StreamGenerator {
 public:
  NoisyStream(std::unique_ptr<StreamGenerator> inner, NoiseConfig noise,
              uint64_t seed = 7777);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return inner_->dims(); }
  std::string name() const override { return inner_->name() + "+noise"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

  const NoiseConfig& noise() const { return noise_; }

 private:
  std::unique_ptr<StreamGenerator> inner_;
  NoiseConfig noise_;
  uint64_t seed_;
  Rng rng_;
  bool have_prev_ = false;
  Vector prev_measured_;
};

}  // namespace kc

#endif  // KALMANCAST_STREAMS_NOISE_H_
