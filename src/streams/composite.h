#ifndef KALMANCAST_STREAMS_COMPOSITE_H_
#define KALMANCAST_STREAMS_COMPOSITE_H_

#include <memory>
#include <vector>

#include "streams/generator.h"

namespace kc {

/// Sums the ground truths of several scalar component generators — the
/// standard way to build realistic workloads (trend + seasonality +
/// bursts) from the primitive families. Components receive distinct
/// derived seeds on Reset so they stay independent. Measurement noise
/// should be layered on the composite with NoisyStream, not on the
/// components.
class SumGenerator : public StreamGenerator {
 public:
  SumGenerator(std::vector<std::unique_ptr<StreamGenerator>> components,
               std::string name);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return name_; }
  std::unique_ptr<StreamGenerator> Clone() const override;

  size_t num_components() const { return components_.size(); }

 private:
  std::vector<std::unique_ptr<StreamGenerator>> components_;
  std::string name_;
};

/// Affine transform of a scalar generator's truth: out = scale * in +
/// offset. Lets one calibrated family serve several magnitudes.
class ScaledGenerator : public StreamGenerator {
 public:
  ScaledGenerator(std::unique_ptr<StreamGenerator> inner, double scale,
                  double offset);

  Sample Next() override;
  void Reset(uint64_t seed) override;
  size_t dims() const override { return 1; }
  std::string name() const override { return inner_->name() + "_scaled"; }
  std::unique_ptr<StreamGenerator> Clone() const override;

 private:
  std::unique_ptr<StreamGenerator> inner_;
  double scale_;
  double offset_;
};

}  // namespace kc

#endif  // KALMANCAST_STREAMS_COMPOSITE_H_
