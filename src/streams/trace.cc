#include "streams/trace.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace kc {

std::vector<Sample> Materialize(StreamGenerator& gen, size_t count,
                                uint64_t seed) {
  gen.Reset(seed);
  std::vector<Sample> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(gen.Next());
  return out;
}

Status SaveTraceCsv(const std::string& path, const std::vector<Sample>& trace) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open for write: " + path);
  size_t dims = trace.empty() ? 1 : trace.front().truth.value.size();
  out << "seq,time";
  for (size_t d = 0; d < dims; ++d) out << ",truth_" << d;
  for (size_t d = 0; d < dims; ++d) out << ",meas_" << d;
  out << "\n";
  out.precision(17);
  for (const Sample& s : trace) {
    out << s.truth.seq << "," << s.truth.time;
    for (size_t d = 0; d < dims; ++d) out << "," << s.truth.value[d];
    for (size_t d = 0; d < dims; ++d) out << "," << s.measured.value[d];
    out << "\n";
  }
  if (!out) return Status::DataLoss("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<Sample>> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::DataLoss("empty trace: " + path);

  // Infer dimensionality from the header: columns beyond seq,time split
  // evenly between truth and measurement.
  std::vector<std::string> header = Split(line, ',');
  if (header.size() < 4 || (header.size() - 2) % 2 != 0) {
    return Status::DataLoss("malformed trace header: " + path);
  }
  size_t dims = (header.size() - 2) / 2;

  std::vector<Sample> trace;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 2 + 2 * dims) {
      return Status::DataLoss(StrFormat("bad field count at line %zu", line_no));
    }
    Sample s;
    auto seq = ParseInt64(fields[0]);
    auto time = ParseDouble(fields[1]);
    if (!seq.ok() || !time.ok()) {
      return Status::DataLoss(StrFormat("bad seq/time at line %zu", line_no));
    }
    s.truth.seq = *seq;
    s.truth.time = *time;
    s.truth.value = Vector(dims);
    s.measured = s.truth;
    for (size_t d = 0; d < dims; ++d) {
      auto tv = ParseDouble(fields[2 + d]);
      auto mv = ParseDouble(fields[2 + dims + d]);
      if (!tv.ok() || !mv.ok()) {
        return Status::DataLoss(StrFormat("bad value at line %zu", line_no));
      }
      s.truth.value[d] = *tv;
      s.measured.value[d] = *mv;
    }
    trace.push_back(std::move(s));
  }
  return trace;
}

ReplayGenerator::ReplayGenerator(std::vector<Sample> trace, std::string name)
    : trace_(std::move(trace)), name_(std::move(name)) {
  assert(!trace_.empty());
}

Sample ReplayGenerator::Next() {
  if (pos_ < trace_.size()) return trace_[pos_++];
  return trace_.back();
}

void ReplayGenerator::Reset(uint64_t /*seed*/) { pos_ = 0; }

size_t ReplayGenerator::dims() const {
  return trace_.front().truth.value.size();
}

std::unique_ptr<StreamGenerator> ReplayGenerator::Clone() const {
  return std::make_unique<ReplayGenerator>(trace_, name_);
}

}  // namespace kc
