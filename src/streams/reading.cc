#include "streams/reading.h"

#include <sstream>

namespace kc {

std::string Reading::ToString() const {
  std::ostringstream os;
  os << "#" << seq << " t=" << time << " v=" << value.ToString();
  return os.str();
}

}  // namespace kc
