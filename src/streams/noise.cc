#include "streams/noise.h"

namespace kc {

NoisyStream::NoisyStream(std::unique_ptr<StreamGenerator> inner,
                         NoiseConfig noise, uint64_t seed)
    : inner_(std::move(inner)), noise_(noise), seed_(seed), rng_(seed) {}

Sample NoisyStream::Next() {
  Sample s = inner_->Next();
  s.measured = s.truth;

  if (noise_.stuck_prob > 0.0 && have_prev_ && rng_.Bernoulli(noise_.stuck_prob)) {
    s.measured.value = prev_measured_;
  } else {
    for (size_t d = 0; d < s.measured.value.size(); ++d) {
      if (noise_.outlier_prob > 0.0 && rng_.Bernoulli(noise_.outlier_prob)) {
        double mag = noise_.gaussian_sigma * noise_.outlier_scale;
        s.measured.value[d] += rng_.Uniform(-mag, mag);
      } else if (noise_.gaussian_sigma > 0.0) {
        s.measured.value[d] += rng_.Gaussian(0.0, noise_.gaussian_sigma);
      }
    }
  }
  prev_measured_ = s.measured.value;
  have_prev_ = true;
  return s;
}

void NoisyStream::Reset(uint64_t seed) {
  // Derive distinct sub-seeds so the truth process and the noise process
  // are independent but both reproducible.
  inner_->Reset(seed);
  rng_.Seed(seed ^ 0xA5A5A5A5DEADBEEFULL);
  have_prev_ = false;
  prev_measured_ = Vector();
}

std::unique_ptr<StreamGenerator> NoisyStream::Clone() const {
  return std::make_unique<NoisyStream>(inner_->Clone(), noise_, seed_);
}

}  // namespace kc
