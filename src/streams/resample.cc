#include "streams/resample.h"

#include <algorithm>
#include <cmath>

namespace kc {

namespace {

Vector Lerp(const Vector& a, const Vector& b, double frac) {
  Vector out(a.size());
  for (size_t d = 0; d < a.size(); ++d) {
    out[d] = a[d] + frac * (b[d] - a[d]);
  }
  return out;
}

}  // namespace

StatusOr<std::vector<Sample>> ResampleTrace(const std::vector<Sample>& trace,
                                            double dt) {
  if (trace.size() < 2) {
    return Status::InvalidArgument("need at least two samples to resample");
  }
  if (dt <= 0.0) return Status::InvalidArgument("dt must be positive");
  for (size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].truth.time <= trace[i - 1].truth.time) {
      return Status::InvalidArgument(
          "timestamps must be strictly increasing (run DropNonMonotonic "
          "first)");
    }
  }

  double t0 = trace.front().truth.time;
  double t_end = trace.back().truth.time;
  auto count = static_cast<size_t>(std::floor((t_end - t0) / dt)) + 1;

  std::vector<Sample> out;
  out.reserve(count);
  size_t seg = 0;  // Current segment [seg, seg+1].
  for (size_t k = 0; k < count; ++k) {
    double t = t0 + static_cast<double>(k) * dt;
    while (seg + 2 < trace.size() && trace[seg + 1].truth.time < t) ++seg;

    Sample s;
    s.truth.seq = static_cast<int64_t>(k);
    s.truth.time = t;
    const Sample& a = trace[seg];
    const Sample& b = trace[seg + 1];
    if (t >= b.truth.time) {
      // Clamp past the end (float edge).
      s.truth.value = b.truth.value;
      s.measured.value = b.measured.value;
    } else {
      double frac = (t - a.truth.time) / (b.truth.time - a.truth.time);
      frac = std::clamp(frac, 0.0, 1.0);
      s.truth.value = Lerp(a.truth.value, b.truth.value, frac);
      s.measured.value = Lerp(a.measured.value, b.measured.value, frac);
    }
    s.measured.seq = s.truth.seq;
    s.measured.time = t;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Sample> DropNonMonotonic(const std::vector<Sample>& trace,
                                     size_t* dropped) {
  std::vector<Sample> out;
  out.reserve(trace.size());
  size_t removed = 0;
  for (const Sample& s : trace) {
    if (!out.empty() && s.truth.time <= out.back().truth.time) {
      ++removed;
      continue;
    }
    out.push_back(s);
  }
  if (dropped != nullptr) *dropped = removed;
  return out;
}

}  // namespace kc
