#ifndef KALMANCAST_STREAMS_READING_H_
#define KALMANCAST_STREAMS_READING_H_

#include <cstdint>
#include <string>

#include "linalg/vector.h"

namespace kc {

/// One timestamped observation produced by a stream source. `value` is a
/// small vector (dimension 1 for scalar sensors, 2 for planar trajectories).
struct Reading {
  int64_t seq = 0;   ///< Sequence number, 0-based, contiguous per stream.
  double time = 0.0; ///< Timestamp in stream time units (ticks * dt).
  Vector value;      ///< Observed value(s).

  /// First component; convenience for scalar streams.
  double scalar() const { return value.empty() ? 0.0 : value[0]; }

  std::string ToString() const;
};

/// A generator step: the noiseless ground truth and the (possibly noisy)
/// measurement a real sensor would report. Suppression policies only ever
/// see `measured`; the experiment harness uses `truth` to report how close
/// the server's bounded answers track reality.
struct Sample {
  Reading truth;
  Reading measured;
};

}  // namespace kc

#endif  // KALMANCAST_STREAMS_READING_H_
