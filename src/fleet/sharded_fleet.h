#ifndef KALMANCAST_FLEET_SHARDED_FLEET_H_
#define KALMANCAST_FLEET_SHARDED_FLEET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fleet/sharded_server.h"
#include "fleet/thread_pool.h"
#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/remote.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "server/simulation.h"

namespace kc {

/// The sharded, multi-threaded fleet simulation: N generator+agent pairs
/// feeding a ShardedServer, partitioned into shards driven in parallel by
/// a persistent worker pool.
///
/// Each shard exclusively owns its sources' generators, agents, uplink
/// and control channels, and its ShardedServer shard (replicas +
/// archives) — including every RNG stream those components draw from. A
/// Step() runs one worker per shard: the shard's server tick, its
/// channels' in-flight deliveries, its generators' samples, and its
/// agents' suppression decisions, with zero cross-shard traffic. The
/// ParallelFor join is the barrier; queries, stats, and archives are then
/// read from the merged view on the driver thread.
///
/// Determinism contract: every RNG seed derives from (config.seed,
/// source id) alone — see SourceGeneratorSeed and friends in
/// server/simulation.h — and shard assignment is a fixed hash of the id,
/// so per-source answers, query results, and merged NetworkStats are
/// bit-identical for ANY `threads` and ANY `num_shards`, and identical to
/// a single-threaded Fleet run with the same seed and AddSource order.
class ShardedFleet {
 public:
  struct Config {
    uint64_t seed = 1;
    AgentConfig agent_base;  ///< delta is overridden per source.
    Channel::Config channel;
    /// Server -> source downlink (SET_BOUND, RESYNC_REQUEST answers ride
    /// the uplink; only the requests themselves travel here). The seed is
    /// overridden per source, so downlink faults are as deterministic as
    /// uplink ones.
    Channel::Config control_channel;
    /// Loss-tolerant replica recovery, applied to every shard when
    /// enabled (see ReplicaRecoveryConfig).
    ReplicaRecoveryConfig recovery;
    /// Worker threads driving shards (1 = fully sequential, no workers).
    size_t threads = 1;
    /// Shard count; 0 picks max(threads, 8). More shards than threads is
    /// fine (workers pick up shards dynamically); results never depend on
    /// either knob.
    size_t num_shards = 0;
    /// Pool eligible Kalman predictors into per-shard structure-of-arrays
    /// FilterPools swept by a batched PredictAll each tick (see
    /// fleet/pool.h). Bit-identical to the per-object path — pinned by
    /// tests/pool_test.cc — so this is purely a performance knob; turning
    /// it off forces every source onto the virtual Predictor path (the
    /// per-object baseline BM_FleetTick_1M measures against). Predictors
    /// that cannot pool (adaptive configs, non-Kalman policies) always
    /// use the per-object path regardless.
    bool pooling = true;
    /// Threads for the phase-1 batched pool sweep (every pool's blocks
    /// flattened into one list and chunked — parallelism *within* shards,
    /// see ShardedServer::SweepPools). 0 reuses `threads`' pool; any other
    /// value gets a dedicated pool of that size. Results never depend on
    /// it (sweep chunks are mutually independent).
    size_t sweep_threads = 0;
    /// Vectorized (lane-per-slot SIMD) sweep kernels. Bit-identical on or
    /// off — pinned by tests/batch_kernels_test.cc — so purely a bench/CI
    /// knob.
    bool simd = true;
    /// Transport seam: when set, every source's uplink channel comes from
    /// this factory instead of `new Channel(config)` — e.g. a socket
    /// backend (net/transport.h) so the fleet's traffic crosses a real
    /// wire. The factory receives the per-source config (seed already
    /// derived); the fleet wires the receiver and metrics exactly as for
    /// a simulated channel, so NetworkStats books stay comparable across
    /// backends (pinned by tests/transport_test.cc).
    using ChannelFactory = std::function<std::unique_ptr<Channel>(
        int32_t id, const Channel::Config& config)>;
    ChannelFactory uplink_factory;
    /// Same seam for the server -> source control downlink.
    ChannelFactory control_factory;
  };

  ShardedFleet();
  explicit ShardedFleet(Config config);

  /// Adds a source; returns its id (sequential from 0). The predictor
  /// prototype is cloned for the agent and the server replica; all RNG
  /// seeds derive from (config.seed, id) only. Not thread-safe; add
  /// sources before the first Step or between Steps.
  int32_t AddSource(std::unique_ptr<StreamGenerator> generator,
                    std::unique_ptr<Predictor> predictor, double delta);

  /// Advances the whole system one stream tick: shards in parallel, then
  /// the barrier. On error the first failing shard's status (lowest shard
  /// index) is returned — deterministically, regardless of thread
  /// interleaving.
  Status Step();

  /// Runs `ticks` steps, stopping on the first error.
  Status Run(size_t ticks);

  ShardedServer& server() { return server_; }
  const ShardedServer& server() const { return server_; }

  size_t num_sources() const { return by_id_.size(); }
  int64_t ticks() const { return ticks_; }
  size_t num_shards() const { return server_.num_shards(); }
  size_t threads() const { return pool_.threads(); }

  const SourceAgent& agent(int32_t id) const { return *by_id_[id]->agent; }
  /// Changes a source's precision bound (adaptive allocation). Driver
  /// thread only, between Steps.
  void SetDelta(int32_t id, double delta) {
    by_id_[id]->agent->set_delta(delta);
  }

  /// Ground truth of the source's latest sample (scalar streams).
  double TruthOf(int32_t id) const {
    return by_id_[id]->last_sample.truth.scalar();
  }
  const Sample& LastSampleOf(int32_t id) const {
    return by_id_[id]->last_sample;
  }
  /// Data messages this source has sent so far.
  int64_t MessagesOf(int32_t id) const;

  int64_t TotalMessages() const;
  int64_t TotalBytes() const;
  /// Server-to-source control traffic (SET_BOUND pushes).
  int64_t TotalControlMessages() const;

  /// Shard-local uplink NetworkStats merged on read (driver thread, after
  /// the barrier): the fleet-wide sent/delivered/dropped/bytes/per-type
  /// accounting the overhead experiments report.
  NetworkStats TotalNetworkStats() const;

  // --- Telemetry ---

  /// Turns on per-shard metric arenas (ShardedServer::EnableMetrics) and
  /// binds every source's uplink, control channel, and agent — including
  /// sources added later — to its owning shard's arena. Also registers
  /// the wall-clock kc.fleet.step_latency_us histogram on the driver
  /// arena. Idempotent; call before the Steps you want recorded.
  void EnableMetrics();
  bool metrics_enabled() const { return server_.metrics_enabled(); }

  /// Merges shard arenas (shard order) then the driver arena into `out`.
  /// Driver thread, after Step returns. Deterministic across `threads`.
  void MergeMetricsInto(obs::MetricRegistry* out) const {
    server_.MergeMetricsInto(out);
  }

  /// Turns on per-shard flight recorders (capacity events per source) and
  /// binds every source's agent AND replica to its shard's per-source
  /// ring — both ends of the protocol share one black box. Idempotent;
  /// covers sources added later.
  void EnableFlightRecorder(
      size_t capacity_per_source = obs::FlightRecorder::kDefaultCapacity);
  bool flight_recorder_enabled() const {
    return server_.flight_recorder_enabled();
  }

  /// Turns on the per-shard filter-health watchdogs and feeds them from
  /// every agent (ticks, NIS, decisions) and replica (resync requests).
  /// Idempotent; covers sources added later.
  void EnableHealth(const obs::HealthConfig& config = {});
  bool health_enabled() const { return server_.health_enabled(); }

  /// Turns on the per-shard precision auditors and the end-to-end sample
  /// feed: every `config.sample_every` ticks each shard worker compares,
  /// for each of its sources, the replica-side answer against the
  /// agent-side contract target (the fleet owns both ends, so this is
  /// ground truth, not an estimate) and hands the auditor the error, the
  /// in-force bound, staleness, and quarantine state. On a lossless
  /// channel containment is exactly 100% by the paper's guarantee; any
  /// violation is an injected fault or a bug. Sampling runs inside the
  /// shard's step (single writer, no locks, no allocations); merged
  /// reports come from ShardedServer::AuditReport*. Idempotent; covers
  /// sources added later.
  void EnableAudit(const obs::AuditConfig& config = {});
  bool audit_enabled() const { return server_.audit_enabled(); }

  /// Turns on windowed metric time-series: after the barrier of every
  /// `every_n_ticks`-th Step the merged registry is snapshotted into the
  /// store's rings (counter deltas, gauge lasts, windowed histogram
  /// percentiles — see obs/timeseries.h). Requires EnableMetrics (called
  /// implicitly). Idempotent.
  void EnableTimeseries(int64_t every_n_ticks,
                        obs::TimeSeriesConfig config = {});
  bool timeseries_enabled() const { return timeseries_ != nullptr; }
  const obs::TimeSeriesStore* timeseries() const { return timeseries_.get(); }

  /// Starts the scrapeable HTTP telemetry endpoint (obs/http_exporter.h)
  /// on 127.0.0.1:`port` (0 = ephemeral; see http()->port()) and
  /// republishes /metrics, /healthz, /audit, and /timeseries snapshots
  /// after the barrier of every `publish_every_n_ticks`-th Step (plus
  /// once at startup). Requires EnableMetrics (called implicitly).
  Status EnableHttpTelemetry(int port, int64_t publish_every_n_ticks = 64);
  obs::TelemetryHttpServer* http() { return http_.get(); }

  /// Turns on the distributed-telemetry plane in self-merge mode: after
  /// the barrier of every `every_n_ticks`-th Step, the merged registry is
  /// encoded through the snapshot codec (obs/snapshot.h) and absorbed by
  /// a RemoteTelemetryMerger exactly as a split deployment's server
  /// absorbs its client's snapshots — so the single-process run exercises
  /// the same codec/merge path the split smoke pins, and /metrics gains
  /// the same kc.remote.client.* namespaced rows. Deterministic: rows are
  /// merged in shard order, and the only run-dependent products
  /// (kc.telemetry.snapshot_bytes, remote copies of wall-clock rows) are
  /// wall_clock-flagged, so deterministic exports stay bit-identical for
  /// any thread count. Requires EnableMetrics (called implicitly).
  /// Idempotent.
  void EnableTelemetryPlane(int64_t every_n_ticks = 32);
  bool telemetry_plane_enabled() const { return telemetry_merger_ != nullptr; }
  const obs::RemoteTelemetryMerger* telemetry_merger() const {
    return telemetry_merger_.get();
  }

  /// Fleet-wide deterministic dumps (empty when the facility is off);
  /// driver thread, after the barrier. Forwarded from ShardedServer.
  std::string DumpFlightRecorderText() const {
    return server_.DumpFlightRecorderText();
  }
  std::string HealthSummaryText() const { return server_.HealthSummaryText(); }
  std::string AuditReportText() const { return server_.AuditReportText(); }
  std::string AuditReportJson() const { return server_.AuditReportJson(); }
  obs::AuditDoc AuditReportDoc() const { return server_.AuditReportDoc(); }
  std::string AuditSummaryLine() const { return server_.AuditSummaryLine(); }
  obs::HealthState HealthOf(int32_t id) const { return server_.HealthOf(id); }

  /// Installs a periodic telemetry report: after the barrier of every
  /// `every_n_ticks`-th Step, the merged metrics are exported and handed
  /// to `sink` on the driver thread. Wall-clock metrics are included only
  /// if `options.include_wall_clock` — exclude them (the default here)
  /// when the report feeds golden-output comparisons. Pass every_n_ticks
  /// <= 0 or a null sink to disable. Requires EnableMetrics().
  using ReportSink = std::function<void(const std::string& report)>;
  void EnablePeriodicMetricsReport(int64_t every_n_ticks, ReportSink sink,
                                   obs::ExportOptions options = {
                                       obs::ExportFormat::kText,
                                       /*include_wall_clock=*/false,
                                       /*prefix=*/{}});

 private:
  struct SourceSlot {
    int32_t id = 0;
    std::unique_ptr<StreamGenerator> generator;
    std::unique_ptr<Channel> channel;          ///< Uplink: source -> server.
    std::unique_ptr<Channel> control_channel;  ///< Downlink: server -> source.
    std::unique_ptr<SourceAgent> agent;
    Sample last_sample;
    obs::SourceAudit* audit = nullptr;  ///< Shard auditor entry (or null).
  };

  /// One shard's exclusively-owned simulation state. `sources` is kept in
  /// id order so a shard's work is independent of AddSource interleaving.
  struct Shard {
    std::vector<std::unique_ptr<SourceSlot>> sources;
    Status status;  ///< Sticky first error seen by this shard's worker.
  };

  void StepShard(size_t index);
  /// The thread pool driving the phase-1 pool sweep (config.sweep_threads;
  /// pool_ itself when 0).
  ThreadPool* SweepDriver() {
    return sweep_pool_ != nullptr ? sweep_pool_.get() : &pool_;
  }
  /// Binds one slot's channels and agent to its shard's arena.
  void BindSlotMetrics(SourceSlot* slot, size_t shard_index);
  /// Binds one slot's agent to its shard's recorder ring / watchdog entry
  /// (whichever facilities are enabled).
  void BindSlotObservability(SourceSlot* slot, size_t shard_index);
  /// Registers one slot with its shard's precision auditor (no-op when
  /// auditing is off).
  void BindSlotAudit(SourceSlot* slot, size_t shard_index);
  /// One shard's audit pass: samples every initialized source at `tick`
  /// (shard worker, inside the step — single writer, allocation-free).
  void AuditShard(size_t index, int64_t tick);
  /// Republishes every HTTP snapshot from the merged post-barrier view.
  void PublishTelemetry();

  Config config_;
  ShardedServer server_;
  std::vector<Shard> shards_;
  std::vector<SourceSlot*> by_id_;  ///< id -> slot (owned by its shard).
  ThreadPool pool_;
  /// Dedicated sweep pool when config.sweep_threads differs from threads;
  /// null otherwise (the sweep borrows pool_).
  std::unique_ptr<ThreadPool> sweep_pool_;
  int64_t ticks_ = 0;
  obs::Histogram* step_latency_us_ = nullptr;  ///< Wall-clock; driver arena.
  int64_t report_every_ = 0;
  ReportSink report_sink_;
  obs::ExportOptions report_options_;
  std::unique_ptr<obs::TimeSeriesStore> timeseries_;
  int64_t timeseries_every_ = 0;
  std::unique_ptr<obs::TelemetryHttpServer> http_;
  int64_t publish_every_ = 0;
  std::unique_ptr<obs::RemoteTelemetryMerger> telemetry_merger_;
  int64_t telemetry_every_ = 0;
  obs::Counter* telemetry_snapshots_ = nullptr;  ///< kc.telemetry.snapshots
  /// kc.telemetry.snapshot_bytes — wall-clock (varint sizes depend on
  /// wall-clock histogram values).
  obs::Counter* telemetry_snapshot_bytes_ = nullptr;
};

}  // namespace kc

#endif  // KALMANCAST_FLEET_SHARDED_FLEET_H_
