#ifndef KALMANCAST_FLEET_THREAD_POOL_H_
#define KALMANCAST_FLEET_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace kc {

/// A persistent pool of worker threads driving fork/join batches.
///
/// ParallelFor(n, body) runs body(0..n-1) across the workers (the calling
/// thread participates) and returns only after every item has finished —
/// the join is the barrier the sharded executor relies on: after
/// ParallelFor returns, every side effect of every body(i) is visible to
/// the caller (the completion count is published under the pool mutex).
///
/// With `threads <= 1` no workers are spawned and ParallelFor degrades to
/// a plain sequential loop, so a --threads=1 run executes exactly the
/// code a --threads=N run executes, minus the scheduling.
///
/// Contract: one driver thread; bodies must not throw. A body MAY call
/// ParallelFor on its own pool again (nested batched work): the re-entry
/// is detected and the nested loop runs inline on the calling thread,
/// sequentially — correct and deterministic, though without additional
/// parallelism.
class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread:
  /// threads-1 workers are spawned. 0 is treated as 1.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(i) for every i in [0, n), dynamically load-balanced across
  /// the pool, and blocks until all n items completed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Total parallelism (workers + the calling thread).
  size_t threads() const { return workers_.size() + 1; }

 private:
  /// One fork/join batch. Heap-allocated and shared with the workers so a
  /// straggler waking up late sees a monotonically exhausted index space
  /// of the *old* batch instead of stealing items from the next one.
  struct Batch {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    size_t completed = 0;  ///< Guarded by ThreadPool::mu_.
  };

  void WorkerLoop();
  void RunItems(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  ///< Guarded by mu_.
  uint64_t generation_ = 0;       ///< Guarded by mu_.
  bool shutdown_ = false;         ///< Guarded by mu_.
};

}  // namespace kc

#endif  // KALMANCAST_FLEET_THREAD_POOL_H_
