#ifndef KALMANCAST_FLEET_THREAD_POOL_H_
#define KALMANCAST_FLEET_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace kc {

/// A non-owning reference to a `void(size_t)` callable — what ParallelFor
/// carries instead of std::function so the per-tick fork/join never heap
/// allocates (std::function copies the callable; a fleet tick would pay
/// that allocation every Step). The referenced callable must outlive the
/// call, which ParallelFor guarantees by blocking until the batch joins.
class FuncRef {
 public:
  FuncRef() = default;
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>,
                                                        FuncRef>>>
  FuncRef(const F& f)  // NOLINT: implicit by design, mirrors function_ref.
      : obj_(&f), fn_([](const void* obj, size_t i) {
          (*static_cast<const F*>(obj))(i);
        }) {}

  void operator()(size_t i) const { fn_(obj_, i); }
  explicit operator bool() const { return fn_ != nullptr; }

 private:
  const void* obj_ = nullptr;
  void (*fn_)(const void*, size_t) = nullptr;
};

/// Same, for a `void(size_t begin, size_t end)` range body.
class RangeFuncRef {
 public:
  RangeFuncRef() = default;
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>,
                                                        RangeFuncRef>>>
  RangeFuncRef(const F& f)  // NOLINT: implicit by design.
      : obj_(&f), fn_([](const void* obj, size_t b, size_t e) {
          (*static_cast<const F*>(obj))(b, e);
        }) {}

  void operator()(size_t begin, size_t end) const { fn_(obj_, begin, end); }

 private:
  const void* obj_ = nullptr;
  void (*fn_)(const void*, size_t, size_t) = nullptr;
};

/// A persistent pool of worker threads driving fork/join batches.
///
/// ParallelFor(n, body) runs body(0..n-1) across the workers (the calling
/// thread participates) and returns only after every item has finished —
/// the join is the barrier the sharded executor relies on: after
/// ParallelFor returns, every side effect of every body(i) is visible to
/// the caller (the completion count is published under the pool mutex).
///
/// With `threads <= 1` no workers are spawned and ParallelFor degrades to
/// a plain sequential loop, so a --threads=1 run executes exactly the
/// code a --threads=N run executes, minus the scheduling.
///
/// Contract: one driver thread; bodies must not throw. A body MAY call
/// ParallelFor on its own pool again (nested batched work): the re-entry
/// is detected and the nested loop runs inline on the calling thread,
/// sequentially — correct and deterministic, though without additional
/// parallelism.
///
/// Steady-state ParallelFor is allocation-free: the batch control block
/// is recycled across calls (a fresh one is allocated only on first use,
/// or in the rare window where a straggler worker still holds the
/// previous one), and FuncRef carries the body without copying it.
class ThreadPool {
 public:
  /// Deterministic chunking for range sweeps: ParallelForRanges splits
  /// [0, n) into exactly
  ///
  ///   NumChunks(n) = clamp(n / kChunkItems, 1, kMaxChunks)      (n > 0)
  ///
  /// contiguous ranges whose sizes differ by at most one (chunk i starts
  /// at i*floor(n/chunks) + min(i, n mod chunks)). The formula is a pure
  /// function of n — never of the pool's thread count or runtime load —
  /// so the work partition of a sweep is reproducible for a fixed input
  /// size. (Partitioning cannot affect *results*: chunked items must be
  /// mutually independent. Making it deterministic anyway keeps perf
  /// profiles comparable across runs and guarantees a --threads=N sweep
  /// partitions exactly like --threads=1.) kChunkItems trades scheduling
  /// overhead against load-balancing granularity; kMaxChunks bounds the
  /// bookkeeping for very large n.
  static constexpr size_t kChunkItems = 64;
  static constexpr size_t kMaxChunks = 1024;
  static size_t NumChunks(size_t n) {
    if (n == 0) return 0;
    size_t chunks = n / kChunkItems;
    if (chunks < 1) chunks = 1;
    if (chunks > kMaxChunks) chunks = kMaxChunks;
    return chunks;
  }

  /// `threads` is the total parallelism including the calling thread:
  /// threads-1 workers are spawned. 0 is treated as 1.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(i) for every i in [0, n), dynamically load-balanced across
  /// the pool, and blocks until all n items completed.
  void ParallelFor(size_t n, FuncRef body);

  /// Runs body(begin, end) over the NumChunks(n) deterministic contiguous
  /// ranges covering [0, n), load-balanced like ParallelFor items, and
  /// blocks until every range completed.
  void ParallelForRanges(size_t n, RangeFuncRef body);

  /// Total parallelism (workers + the calling thread).
  size_t threads() const { return workers_.size() + 1; }

 private:
  /// One fork/join batch. Shared with the workers so a straggler waking
  /// up late sees a monotonically exhausted index space of the *old*
  /// batch instead of stealing items from the next one; recycled for the
  /// next batch once no thread holds it (holders == 0), which keeps the
  /// steady state allocation-free.
  struct Batch {
    FuncRef body;
    size_t n = 0;
    std::atomic<size_t> next{0};
    size_t completed = 0;  ///< Guarded by ThreadPool::mu_.
    size_t holders = 0;    ///< Threads inside RunItems; guarded by mu_.
  };

  void WorkerLoop();
  void RunItems(const std::shared_ptr<Batch>& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  ///< Guarded by mu_.
  uint64_t generation_ = 0;       ///< Guarded by mu_.
  bool shutdown_ = false;         ///< Guarded by mu_.
};

}  // namespace kc

#endif  // KALMANCAST_FLEET_THREAD_POOL_H_
