#ifndef KALMANCAST_FLEET_POOL_H_
#define KALMANCAST_FLEET_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "kalman/kalman_filter.h"
#include "kalman/model.h"
#include "linalg/batch_kernels.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "suppression/policies.h"
#include "suppression/predictor.h"

namespace kc {

namespace obs {
class Counter;
class MetricRegistry;
}  // namespace obs

/// Structure-of-arrays storage for many Kalman filters that share one
/// (model, update form). Instead of each source owning a heap-scattered
/// KalmanFilter — whose ~7 KB of model + workspace matrices dominate the
/// per-tick cache traffic at fleet scale — a pool keeps every filter's
/// mutable state (x, P) in two contiguous slabs and shares a single model
/// and scratch workspace across all slots.
///
/// Slab layout (AoSoA): slots are grouped into blocks of
/// batch::kLanes (4); element e of slot s lives at
/// xs_[(block*dim + e)*kLanes + lane] with block = s/4, lane = s%4, and
/// P entry (r, c) at ps_[(block*dim*dim + r*dim + c)*kLanes + lane].
/// One SIMD register load at an element's address therefore picks up the
/// *same* element of four adjacent slots — the lane-per-slot layout the
/// batched predict sweep (linalg/batch_kernels.h) vectorizes over. The
/// layout is fixed (independent of whether SIMD is compiled in or
/// enabled), so serialized state and test fixtures never depend on the
/// instruction set.
///
/// Bit-identity contract: every per-slot operation executes the *same*
/// destination-passing kernel sequence as KalmanFilter::Predict/Update
/// (src/kalman/kalman_filter.cc), and the vectorized sweep executes that
/// sequence per lane without reordering anything within a slot — so a
/// pooled filter's state is bit-identical to a per-object filter fed the
/// same inputs whether the sweep ran scalar, vectorized, chunked across
/// threads, or slot-at-a-time. Pooling is a memory-layout change, never a
/// numerical one (see docs/PERF.md for the full argument).
///
/// Slot lifecycle: Acquire() -> ResetSlot() -> {PredictAll / PredictSlot /
/// UpdateSlot / GateSlot ...} -> Release(). Release zeroes x and P before
/// returning the slot to the free list, so a later Acquire for a
/// re-registered source id can never observe a previous tenant's state.
/// The free list is a min-heap: Acquire always reuses the lowest-indexed
/// free slot, so long-lived pools stay dense at the front of the slabs
/// and re-acquired slots land next to live ones (slab locality) instead
/// of wherever the most recent release happened to be.
///
/// Threading: a pool is single-writer for slot lifecycle and per-slot
/// operations, like the shard that owns it. The *sweep* may be chunked:
/// disjoint block ranges (SweepBlocks) touch disjoint slab memory and
/// only shared read-only model data, so different threads may sweep
/// different ranges of the same pool concurrently — that is how
/// ShardedServer::SweepPools parallelizes one big pool across the
/// ThreadPool (slots are mutually independent, so any chunking yields
/// the same bits).
class FilterPool {
 public:
  /// Invalid slot sentinel.
  static constexpr int32_t kNoSlot = -1;
  /// Slots per block (SIMD lanes of the batched predict kernel).
  static constexpr size_t kLanes = batch::kLanes;

  FilterPool(StateSpaceModel model, KalmanFilter::UpdateForm form);

  /// True if this pool stores filters for exactly this (model, form).
  bool Matches(const StateSpaceModel& model,
               KalmanFilter::UpdateForm form) const;

  /// Claims a slot (reusing the lowest-indexed freed one when available)
  /// and records the owning source id for diagnostics. The slot starts
  /// zeroed; call ResetSlot before filtering with it.
  int32_t Acquire(int32_t owner_id);

  /// Returns a slot to the free list, zeroing x and P so the next tenant
  /// can never observe stale state (id-reuse hygiene).
  void Release(int32_t slot);

  /// (Re)initializes a slot's state and covariance and clears its predict
  /// epoch and diagnostics — the pooled equivalent of constructing a
  /// fresh KalmanFilter.
  void ResetSlot(int32_t slot, const Vector& x0, const Matrix& p0);

  // --- Batched tick kernels -------------------------------------------

  /// Advances every active slot one time update (one sweep over the
  /// slabs) and bumps the pool's sweep epoch. Returns the number of slots
  /// advanced. Equivalent to BeginSweep() + SweepBlocks(0, num_blocks()).
  size_t PredictAll();

  /// Starts a sweep: advances the pool-level sweep counter that every
  /// active slot's predict epoch is measured against. Call once per
  /// sweep, then cover every block via SweepBlocks (in any chunking).
  void BeginSweep();

  /// Runs the time update on every active slot in blocks
  /// [begin_block, end_block), using the vectorized batch kernel (or its
  /// scalar twin when SIMD is off). Returns slots advanced. Disjoint
  /// ranges may run on different threads concurrently; blocks with no
  /// active slots cost one mask-byte test.
  size_t SweepBlocks(size_t begin_block, size_t end_block);

  /// Blocks the slabs currently span (including dead ones, skipped by
  /// their zero activity mask).
  size_t num_blocks() const { return block_mask_.size(); }

  /// Measurement-updates each (slot, z) pair in order. Returns the number
  /// of successful updates; a failed update (singular S) skips that slot
  /// without touching its state, exactly like KalmanFilter::Update.
  size_t UpdateBatch(const int32_t* slots, const Vector* zs, size_t n);

  /// Computes the gate NIS of z against each slot (see GateSlot) into
  /// nis_out[i], without mutating any state.
  void GateBatch(const int32_t* slots, const Vector* zs, size_t n,
                 double* nis_out);

  // --- Per-slot operations (same kernels, one slot at a time) ---------

  /// One time update: x <- F x, P <- F P F^T + Q. Bumps the predict epoch.
  void PredictSlot(int32_t slot);

  /// Runs time updates until the slot's predict epoch reaches `epoch`.
  /// No-op if a batched sweep already advanced it there — this is how
  /// pooled predictors stay correct whether or not a batched sweep is
  /// driving the pool (standalone use never calls PredictAll).
  void PredictSlotUpTo(int32_t slot, int64_t epoch);

  /// Measurement update with observation z; identical kernel sequence to
  /// KalmanFilter::Update, including the Joseph/standard covariance forms
  /// and the NIS diagnostic (LastNisOf). Fails without modifying state if
  /// z has the wrong dimension or S is not positive definite.
  Status UpdateSlot(int32_t slot, const Vector& z);

  /// Innovation gate statistic: NIS of z against the slot's predicted
  /// observation, computed exactly as KalmanPredictor's gate does.
  /// Returns a negative value if S fails to factor (gate inconclusive);
  /// never mutates state.
  double GateSlot(int32_t slot, const Vector& z);

  // --- Accessors -------------------------------------------------------

  /// The slot's state / covariance, gathered out of the lane-interleaved
  /// slab (by value; inline small-buffer storage, so no heap traffic for
  /// the dim <= 8 envelope).
  Vector StateOf(int32_t slot) const;
  Matrix CovarianceOf(int32_t slot) const;
  /// Expected observation H x (value-identical to
  /// KalmanFilter::PredictObservation).
  Vector PredictObservationOf(int32_t slot) const;
  /// NIS of the slot's most recent successful UpdateSlot (0 before any).
  double LastNisOf(int32_t slot) const { return last_nis_[slot]; }
  /// Time updates applied since the slot's last ResetSlot. Stored as an
  /// offset from the pool-level sweep counter, so a batched sweep
  /// advances every active slot's epoch with a single counter increment
  /// instead of a per-slot write.
  int64_t PredictEpochOf(int32_t slot) const {
    return sweep_count_ + epoch_base_[slot];
  }
  int32_t OwnerOf(int32_t slot) const { return owner_[slot]; }
  bool IsActive(int32_t slot) const {
    return slot >= 0 && static_cast<size_t>(slot) < size_ &&
           (block_mask_[static_cast<size_t>(slot) / kLanes] &
            (1u << (static_cast<size_t>(slot) % kLanes))) != 0;
  }

  /// Flattens (x, P) as KalmanFilter::SerializeState does: x's entries
  /// followed by P's rows.
  std::vector<double> SerializeSlot(int32_t slot) const;
  /// Restores (x, P) from SerializeSlot/SerializeState output.
  Status DeserializeSlot(int32_t slot, const std::vector<double>& payload);
  /// Overwrites x only (state-sync corrections), leaving P in place and
  /// re-symmetrizing it — behaviorally identical to the per-object path,
  /// which round-trips the unchanged P through DeserializeState.
  Status OverwriteStateOf(int32_t slot, const std::vector<double>& payload);

  const StateSpaceModel& model() const { return model_; }
  KalmanFilter::UpdateForm form() const { return form_; }
  size_t state_dim() const { return model_.state_dim(); }
  size_t obs_dim() const { return model_.obs_dim(); }
  /// Slots currently in use / ever allocated.
  size_t num_active() const { return num_active_; }
  size_t capacity() const { return size_; }

  /// Toggles the vectorized sweep kernel at runtime (on by default). Both
  /// settings produce identical bits — this is a bench/test knob, plus
  /// the escape hatch KC_SIMD=OFF builds pin in CI.
  void set_simd(bool on) { simd_ = on; }
  bool simd() const { return simd_; }

 private:
  /// Shared scratch, one per pool (not per filter): the same temporaries
  /// KalmanFilter::Workspace holds, plus gather targets for the slot
  /// being operated on, reshaped once and fully overwritten on every use.
  /// Used only by single-writer per-slot operations — the chunked sweep
  /// needs no workspace at all (the batch kernel lives in registers).
  struct Workspace {
    Vector x, fx, hx, nu, knu, sinv_nu;
    Matrix p, tmp1, s, l, ph_t, kt, k, kh, i_kh, j1, krk;
  };

  // Lane-addressing helpers (see the class comment for the layout).
  double* XBlock(size_t block) { return xs_.data() + block * dim_ * kLanes; }
  double* PBlock(size_t block) {
    return ps_.data() + block * dim_ * dim_ * kLanes;
  }
  double& XAt(int32_t slot, size_t e) {
    return xs_[((static_cast<size_t>(slot) / kLanes) * dim_ + e) * kLanes +
               static_cast<size_t>(slot) % kLanes];
  }
  double XAt(int32_t slot, size_t e) const {
    return xs_[((static_cast<size_t>(slot) / kLanes) * dim_ + e) * kLanes +
               static_cast<size_t>(slot) % kLanes];
  }
  double& PAt(int32_t slot, size_t r, size_t c) {
    return ps_[((static_cast<size_t>(slot) / kLanes) * dim_ * dim_ +
                r * dim_ + c) *
                   kLanes +
               static_cast<size_t>(slot) % kLanes];
  }
  double PAt(int32_t slot, size_t r, size_t c) const {
    return ps_[((static_cast<size_t>(slot) / kLanes) * dim_ * dim_ +
                r * dim_ + c) *
                   kLanes +
               static_cast<size_t>(slot) % kLanes];
  }

  /// Gather / scatter one slot's (x, P) between the slabs and dense
  /// Vector/Matrix scratch (pure copies: bit-preserving by definition).
  void LoadSlotInto(int32_t slot, Vector* x, Matrix* p) const;
  void StoreSlotFrom(int32_t slot, const Vector& x, const Matrix& p);
  /// In-place strided Symmetrize of a slot's P, same operation order as
  /// Matrix::Symmetrize.
  void SymmetrizeSlotCov(int32_t slot);

  /// The time-update kernels on one slot, without epoch bookkeeping:
  /// a single-lane-mask call of the same block kernel the sweep uses.
  void PredictRaw(int32_t slot);
  /// Scalar fallback for dims beyond the specialized kernels
  /// (dim > batch::kMaxDim — never pooled by MakePooledPredictor, but
  /// FilterPool itself stays fully functional): gather, run the scalar
  /// kernel sequence in `ws`, scatter.
  void PredictScalarSlot(int32_t slot, Workspace* ws);
  /// Appends one zeroed block to the slabs and bookkeeping arrays.
  void GrowBlock();

  StateSpaceModel model_;
  KalmanFilter::UpdateForm form_;
  size_t dim_;  ///< model_.state_dim(), cached for lane addressing.
  batch::PredictBlockFn simd_fn_;      ///< Vector kernel (null if dim > 8).
  batch::PredictBlockFn portable_fn_;  ///< Scalar-lane twin (ditto).
  bool simd_ = true;

  // AoSoA slabs + per-slot bookkeeping, sized in whole blocks.
  std::vector<double> xs_;
  std::vector<double> ps_;
  std::vector<uint8_t> block_mask_;  ///< Bit l set = slot 4b+l active.
  std::vector<int32_t> owner_;       ///< Source id, kNoSlot when free.
  std::vector<int64_t> epoch_base_;  ///< Epoch offset from sweep_count_.
  std::vector<double> last_nis_;     ///< Last UpdateSlot NIS.
  std::vector<int32_t> free_;        ///< Min-heap of released slots.
  size_t size_ = 0;  ///< Slots ever created (<= blocks * kLanes).
  size_t num_active_ = 0;
  int64_t sweep_count_ = 0;  ///< Batched sweeps since construction.

  Workspace ws_;
};

/// The per-shard collection of filter pools: one FilterPool per distinct
/// (model, update form) among the shard's pooled sources. PoolFor returns
/// a stable pointer (pools are never destroyed before the set), and
/// PredictAll sweeps every pool in creation order — the batched tick the
/// sharded server runs at the top of each shard tick. The set also
/// interns predictor configs (InternConfig) so a million pooled sources
/// share one Config allocation per distinct configuration instead of
/// carrying ~2 KB of model copies each.
class FilterPoolSet {
 public:
  /// The pool for this (model, form), created on first use. Pointers stay
  /// valid for the set's lifetime.
  FilterPool* PoolFor(const StateSpaceModel& model,
                      KalmanFilter::UpdateForm form);

  /// Batched tick: PredictAll on every pool, in creation order. Returns
  /// total slots advanced.
  size_t PredictAll();

  size_t num_pools() const { return pools_.size(); }
  /// Pool by creation index (stable; for sweep drivers that chunk across
  /// pools, see ShardedServer::SweepPools).
  FilterPool* pool(size_t index) { return pools_[index].get(); }
  size_t num_active() const;

  /// Applies to every pool, current and future (PoolFor inherits it).
  void set_simd(bool on);
  bool simd() const { return simd_; }

  /// Returns a shared, deduplicated copy of `config`: configs comparing
  /// equal (model matrices and all behavioral knobs) map to one
  /// allocation. A KalmanPredictor::Config embeds four model matrices —
  /// ~2 KB even for a scalar model — and every pooled predictor used to
  /// carry its own copy; at fleet scale those copies were gigabytes of
  /// cold, duplicated heap that the tick had to walk around. Non-adaptive
  /// configs only (adaptive configs are never pooled).
  std::shared_ptr<const KalmanPredictor::Config> InternConfig(
      const KalmanPredictor::Config& config);

 private:
  std::vector<std::unique_ptr<FilterPool>> pools_;
  std::vector<std::shared_ptr<const KalmanPredictor::Config>> configs_;
  bool simd_ = true;
};

/// Drop-in pooled replacement for a non-adaptive KalmanPredictor: the same
/// dual-filter suppression protocol (shadow + private, sync modes, outlier
/// gate, serialization formats, metric names), with both filters living as
/// slots in a shared FilterPool instead of owning KalmanFilter objects.
/// Every ObserveLocal/ApplyCorrection/... is bit-identical to the
/// per-object KalmanPredictor fed the same inputs (pinned by
/// tests/pool_test.cc), so the fleet can substitute one for the other
/// freely.
///
/// Predict epochs: Tick() and ObserveLocal() advance per-predictor tick
/// counters and ask the pool to catch the slot up (PredictSlotUpTo). When
/// the owning shard runs FilterPoolSet::PredictAll once per tick, the
/// catch-up is a no-op and the time updates happen in the batched sweep;
/// without a sweep (standalone use, unit tests) the catch-up does the
/// predicts itself. Either way each slot sees exactly one time update per
/// protocol tick.
///
/// The private filter's slot is materialized lazily at first use: a
/// server-side replica clone never observes locally, so its private slot
/// is never created and the batched sweep never wastes a time update on
/// state nobody reads.
class PooledKalmanPredictor : public Predictor {
 public:
  /// `pools` must outlive the predictor (the sharded server's pool sets
  /// outlive its shards' replicas by member order). The config is
  /// interned through `pools` so clones and same-configured predictors
  /// share one copy.
  PooledKalmanPredictor(KalmanPredictor::Config config, FilterPoolSet* pools);
  PooledKalmanPredictor(std::shared_ptr<const KalmanPredictor::Config> config,
                        FilterPoolSet* pools);
  ~PooledKalmanPredictor() override;

  void Init(const Reading& first) override;
  void Tick() override;
  void ObserveLocal(const Reading& measured) override;
  Vector Target() const override;
  Vector Predict() const override;
  std::vector<double> EncodeCorrection(const Reading& measured) const override;
  Status ApplyCorrection(int64_t seq, double time,
                         const std::vector<double>& payload) override;
  std::vector<double> EncodeFullState() const override;
  Status ApplyFullState(const std::vector<double>& payload) override;
  void BindMetrics(obs::MetricRegistry* registry) override;
  double LastNis() const override { return last_nis_; }
  int64_t OutliersRejected() const override { return outliers_rejected_; }
  std::unique_ptr<Predictor> Clone() const override;
  /// Same names as KalmanPredictor: pooling is invisible to reports.
  std::string name() const override;
  size_t dims() const override { return config_->model.obs_dim(); }

  const KalmanPredictor::Config& config() const { return *config_; }
  /// The pool backing this predictor (nullptr before Init).
  const FilterPool* pool() const { return pool_; }
  int32_t shadow_slot() const { return shadow_slot_; }
  int32_t private_slot() const { return private_slot_; }

 private:
  /// Arena counter handles, cached at bind time; null until BindMetrics.
  struct Metrics {
    obs::Counter* outliers_rejected = nullptr;
    obs::Counter* forced_accepts = nullptr;
    obs::Counter* filter_resets = nullptr;
  };

  /// Materializes the private slot from the Init reading if it is still
  /// pending (state-sync modes only).
  void EnsurePrivateSlot();
  void ReleaseSlots();

  std::shared_ptr<const KalmanPredictor::Config> config_;
  FilterPoolSet* pools_;
  FilterPool* pool_ = nullptr;  ///< Resolved at first Init.
  Metrics metrics_;
  int32_t shadow_slot_ = FilterPool::kNoSlot;
  int32_t private_slot_ = FilterPool::kNoSlot;
  /// True between Init and the first private-slot use (lazy acquisition).
  bool private_pending_ = false;
  /// The Init reading's value, kept so a pending private slot can be
  /// materialized with the same x0/P0 Init would have used.
  Vector init_value_;
  double gate_threshold_ = 0.0;  ///< Chi-squared NIS cutoff (0 = no gate).
  int consecutive_rejects_ = 0;
  int64_t outliers_rejected_ = 0;
  double last_nis_ = -1.0;
  int64_t shadow_ticks_ = 0;   ///< Tick() calls since Init.
  int64_t private_ticks_ = 0;  ///< ObserveLocal() calls since Init.
  /// Reusable payload -> Vector scratch for measurement-sync corrections.
  Vector z_scratch_;
};

/// If `prototype` is a poolable KalmanPredictor — non-adaptive (adaptive
/// noise estimation mutates the per-source model, defeating sharing) and
/// within the inline state_dim/obs_dim <= 8 envelope — returns a pooled
/// equivalent backed by `pools`. Returns nullptr when the prototype must
/// stay on the virtual per-object path (EKF/UKF/IMM-style predictors,
/// adaptive configs, oversized models).
std::unique_ptr<Predictor> MakePooledPredictor(const Predictor& prototype,
                                               FilterPoolSet* pools);

}  // namespace kc

#endif  // KALMANCAST_FLEET_POOL_H_
