#ifndef KALMANCAST_FLEET_SHARDED_SERVER_H_
#define KALMANCAST_FLEET_SHARDED_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/pool.h"
#include "fleet/thread_pool.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "server/server.h"

namespace kc {

/// A fleet-scale stream server: N single-threaded StreamServer shards,
/// each owning the replicas, channels-facing state, and tick archives of
/// the sources hashed to it.
///
/// Threading model (the determinism contract):
///  - Sources are partitioned by a fixed hash of source_id, so shard
///    assignment never depends on registration order or thread count.
///  - During a tick, each shard is driven by exactly one worker thread
///    (TickShard + the shard's message deliveries); shards share no
///    mutable state, so no locks are needed on the hot path.
///  - Readers (queries, stats, archives) run after the driver's barrier
///    (ThreadPool::ParallelFor join) on one thread, against a merged,
///    consistent view: every shard has ticked the same number of times
///    and drained its messages.
///  - All randomness lives in per-source RNG streams owned by the shard
///    (seeded from the fleet seed and source id only), so answers are
///    bit-identical for any shard or thread count.
///
/// The cross-shard continuous-query registry lives here, evaluated
/// against the merged SourceView; a single query may span sources on any
/// subset of shards.
class ShardedServer : public SourceView {
 public:
  explicit ShardedServer(size_t num_shards = 1);

  size_t num_shards() const { return shards_.size(); }

  /// The shard owning a source id (fixed hash; stable across runs).
  size_t ShardOf(int32_t source_id) const;

  /// Direct shard access (the sharded fleet wires each source's channel
  /// straight into its owning shard). Shard references are stable for the
  /// server's lifetime.
  StreamServer& shard(size_t index) { return *shards_[index]; }
  const StreamServer& shard(size_t index) const { return *shards_[index]; }

  /// Registers a source on its owning shard. Fails on duplicate ids.
  Status RegisterSource(int32_t source_id,
                        std::unique_ptr<Predictor> predictor);

  /// Removes a source (and its shard-local archive).
  Status UnregisterSource(int32_t source_id);

  /// Advances every shard one stream tick, in shard order, on the calling
  /// thread. Threaded drivers call TickShard(s) from their per-shard
  /// workers instead.
  void Tick();

  /// Advances one shard one stream tick: first the shard's batched filter
  /// sweep (FilterPoolSet::PredictAll — one contiguous pass over every
  /// pooled filter's state), then the shard's replicas. Thread-affine: at
  /// most one thread per shard per tick. Drivers that already swept every
  /// pool via SweepPools this tick pass run_pool_sweep = false, otherwise
  /// the slots would advance twice.
  void TickShard(size_t index, bool run_pool_sweep = true);

  /// Runs this tick's batched filter sweep for EVERY shard's pools, as one
  /// flat list of slab blocks chunked across `pool` (sequentially on the
  /// calling thread when null or when the pool is this thread's own — the
  /// chunking is ThreadPool::NumChunks, a pure function of the block
  /// count). Pool slots are mutually independent and a sweep writes only
  /// block-local slab memory, so any chunking of the block list — across
  /// pools, shards, and threads — produces bit-identical state; it also
  /// cannot race the subsequent per-shard tick work, which this call must
  /// complete before (call from the driver, then fan out TickShard(s,
  /// /*run_pool_sweep=*/false)). Hoisting the sweep out of the per-shard
  /// ticks is state-identical because a shard's tick only ever touches its
  /// own pools.
  void SweepPools(ThreadPool* pool = nullptr);

  /// Toggles the vectorized sweep kernels on every shard's pool set
  /// (current and future pools). Bit-identical either way; bench/CI knob.
  void SetSimdEnabled(bool on);

  /// The shard's filter pools. Pooled predictors registered on a shard
  /// (ShardedFleet does this for poolable Kalman sources) must draw their
  /// slots from its own pool set, so the shard's worker remains the only
  /// thread touching that state. Stable for the server's lifetime.
  FilterPoolSet* shard_pools(size_t index) { return pool_sets_[index].get(); }

  /// Routes a wire message to the owning shard's replica. In threaded
  /// use, call only from the thread driving that shard this tick.
  Status OnMessage(const Message& msg);

  // --- Merged reads (call after the tick barrier) ---

  StatusOr<BoundedAnswer> SourceValue(int32_t source_id) const override;
  const ServerReplica* replica(int32_t source_id) const override;
  bool IsStale(int32_t source_id) const override;
  bool IsDesynced(int32_t source_id) const override;
  StatusOr<const TickArchive*> Archive(int32_t source_id) const override;
  /// The merged stream clock. All shards tick together, so this is shard
  /// 0's clock.
  int64_t ticks() const override;

  StatusOr<QueryResult> HistoricalAggregate(int32_t source_id,
                                            AggregateKind kind, double t0,
                                            double t1) const;

  /// Sources registered across all shards.
  size_t num_sources() const;
  /// Messages processed across all shards (merged on read).
  int64_t messages_processed() const;
  /// Registered source ids across all shards (sorted).
  std::vector<int32_t> SourceIds() const;

  // --- Fleet-wide configuration (applied to every shard) ---

  void SetStalenessLimit(int64_t max_silent_ticks);
  int64_t staleness_limit() const;
  void EnableArchiving(size_t capacity);

  /// Enables loss-tolerant replica recovery on every shard (current and
  /// future sources).
  void SetRecovery(const ReplicaRecoveryConfig& config);

  /// Installs the control downlink on every shard (PushBound routes
  /// through the owning shard so the pushed message carries that shard's
  /// clock).
  void SetControlSink(StreamServer::ControlSink sink);
  Status PushBound(int32_t source_id, double delta);

  // --- Cross-shard continuous queries ---

  Status AddQuery(const std::string& name, QuerySpec spec);
  Status RemoveQuery(const std::string& name);
  StatusOr<QueryResult> Evaluate(const std::string& name) const;
  StatusOr<QueryResult> EvaluateSpec(const QuerySpec& spec,
                                     const std::string& name = "adhoc") const;
  std::vector<QueryResult> EvaluateAll() const;
  std::vector<QueryResult> EvaluateDue();
  StatusOr<QuerySpec> GetQuery(const std::string& name) const;
  std::vector<std::string> QueryNames() const;
  size_t num_queries() const { return queries_.size(); }

  // --- Per-shard telemetry ---

  /// Creates one metric arena per shard plus a driver arena, and binds
  /// each shard's StreamServer (replicas, predictors, later-registered
  /// sources included) to its own arena. During a tick each shard worker
  /// records only into its shard's arena, so the hot path never contends
  /// or crosses shard boundaries; cross-shard query evaluations (driver
  /// thread, post-barrier) record into the driver arena. Idempotent.
  void EnableMetrics();
  bool metrics_enabled() const { return !shard_metrics_.empty(); }

  /// A shard's arena (nullptr before EnableMetrics). The sharded fleet
  /// binds each source's channels and agent to its owning shard's arena.
  obs::MetricRegistry* shard_metrics(size_t index) {
    return shard_metrics_.empty() ? nullptr : shard_metrics_[index].get();
  }
  obs::MetricRegistry* driver_metrics() { return driver_metrics_.get(); }

  /// Merges every shard arena — in shard order, a fixed function of the
  /// source-id hash, never of thread schedule — then the driver arena
  /// into `out`. Call after the tick barrier; the result is bit-identical
  /// for any worker-thread count.
  void MergeMetricsInto(obs::MetricRegistry* out) const;

  // --- Per-shard flight recorder & health watchdog ---

  /// Creates one flight recorder per shard (capacity events per source)
  /// and binds each shard's replicas — and the fleet's agents, via
  /// shard_recorder() — to their shard's recorder. A source lives on
  /// exactly one shard, so every dump walks sources in ascending-id order
  /// and is bit-identical for any worker-thread count. Idempotent.
  void EnableFlightRecorder(size_t capacity_per_source);
  bool flight_recorder_enabled() const { return !shard_recorders_.empty(); }

  /// Creates one health watchdog per shard, binds each to its shard's
  /// metric arena (when metrics are enabled, in either order) and
  /// recorder (likewise), and attaches each shard's replicas. Idempotent.
  void EnableHealth(const obs::HealthConfig& config = {});
  bool health_enabled() const { return !shard_health_.empty(); }

  /// A shard's recorder/watchdog (nullptr before the matching Enable).
  obs::FlightRecorder* shard_recorder(size_t index) {
    return shard_recorders_.empty() ? nullptr : shard_recorders_[index].get();
  }
  obs::HealthMonitor* shard_health(size_t index) {
    return shard_health_.empty() ? nullptr : shard_health_[index].get();
  }

  // --- Per-shard precision audit ---

  /// Creates one precision auditor per shard plus a driver-side auditor
  /// for the cross-shard query ledger, each bound to its shard's metric
  /// arena / recorder / watchdog (whichever are enabled, in either
  /// order). The fleet feeds per-source samples into the shard auditors
  /// from the shard workers; this server feeds its own cross-shard query
  /// evaluations into the driver auditor. Idempotent.
  void EnableAudit(const obs::AuditConfig& config = {});
  bool audit_enabled() const { return !shard_audits_.empty(); }

  /// A shard's auditor / the driver-side query auditor (nullptr before
  /// EnableAudit).
  obs::PrecisionAuditor* shard_audit(size_t index) {
    return shard_audits_.empty() ? nullptr : shard_audits_[index].get();
  }
  obs::PrecisionAuditor* driver_audit() { return driver_audit_.get(); }

  /// Merged fleet-wide audit reports: sources in ascending-id order,
  /// query tallies merged by name across every arena (shard order, then
  /// driver). Call after the tick barrier; bit-identical for any worker
  /// thread count. Empty ("{}"/"" ) when disabled.
  std::string AuditReportText() const;
  std::string AuditReportJson() const;
  /// The JSON report as addressable pieces (obs::AuditDoc) for
  /// `?prefix=`-scoped /audit scrapes. Empty doc when disabled.
  obs::AuditDoc AuditReportDoc() const;
  std::string AuditSummaryLine() const;

  /// Sources whose SLO error budget is currently EXHAUSTED (0 when
  /// disabled) — the /healthz verdict input.
  int64_t AuditExhaustedSources() const;

  /// The watchdog's merged verdict for one source (kOk when disabled).
  obs::HealthState HealthOf(int32_t source_id) const override;

  /// Fleet-wide black-box dump / health summary, sources in ascending-id
  /// order (deterministic for any thread count). Empty when disabled.
  std::string DumpFlightRecorderText() const;
  std::string DumpFlightRecorderJson() const;
  std::string HealthSummaryText() const;

 private:
  /// Mirrors one cross-shard query evaluation onto the driver arena.
  void RecordQueryOutcome(bool ok, bool stale) const;

  /// Mirrors one cross-shard evaluation into the driver audit ledger
  /// (null `result` = failed evaluation).
  void RecordQueryAudit(const std::string& name,
                        const QueryResult* result) const;

  /// The merged view over every audit arena (shard order, then driver).
  obs::AuditMergeView AuditView() const;

  /// One pool's position in the flattened block list SweepPools chunks
  /// over: its blocks occupy [first_block, first_block + num_blocks()).
  struct SweepUnit {
    FilterPool* pool;
    size_t first_block;
  };

  /// Declared before shards_: replicas (and the fleet's agents) hold pool
  /// slots, so the pool sets must be destroyed after every predictor that
  /// releases into them.
  std::vector<std::unique_ptr<FilterPoolSet>> pool_sets_;
  std::vector<std::unique_ptr<StreamServer>> shards_;
  /// Rebuilt by each SweepPools call; a member so the steady-state tick
  /// reuses its capacity (zero allocations per tick).
  std::vector<SweepUnit> sweep_units_;
  QueryTable queries_;
  std::vector<std::unique_ptr<obs::MetricRegistry>> shard_metrics_;
  std::unique_ptr<obs::MetricRegistry> driver_metrics_;
  std::vector<std::unique_ptr<obs::FlightRecorder>> shard_recorders_;
  std::vector<std::unique_ptr<obs::HealthMonitor>> shard_health_;
  std::vector<std::unique_ptr<obs::PrecisionAuditor>> shard_audits_;
  std::unique_ptr<obs::PrecisionAuditor> driver_audit_;
  obs::Counter* queries_served_ = nullptr;
  obs::Counter* queries_failed_ = nullptr;
  obs::Counter* queries_stale_ = nullptr;
};

}  // namespace kc

#endif  // KALMANCAST_FLEET_SHARDED_SERVER_H_
