#include "fleet/sharded_server.h"

#include <algorithm>

namespace kc {

ShardedServer::ShardedServer(size_t num_shards) {
  size_t n = std::max<size_t>(num_shards, 1);
  pool_sets_.reserve(n);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pool_sets_.push_back(std::make_unique<FilterPoolSet>());
    shards_.push_back(std::make_unique<StreamServer>());
  }
}

size_t ShardedServer::ShardOf(int32_t source_id) const {
  // Fixed-width multiplicative hash (splitmix-style): platform-independent
  // and independent of registration order, so a source's owning shard is a
  // pure function of (id, num_shards).
  uint64_t h = static_cast<uint64_t>(static_cast<uint32_t>(source_id)) *
               0x9E3779B97F4A7C15ULL;
  return static_cast<size_t>((h >> 32) % shards_.size());
}

Status ShardedServer::RegisterSource(int32_t source_id,
                                     std::unique_ptr<Predictor> predictor) {
  return shards_[ShardOf(source_id)]->RegisterSource(source_id,
                                                     std::move(predictor));
}

Status ShardedServer::UnregisterSource(int32_t source_id) {
  return shards_[ShardOf(source_id)]->UnregisterSource(source_id);
}

void ShardedServer::Tick() {
  for (size_t i = 0; i < shards_.size(); ++i) TickShard(i);
}

void ShardedServer::TickShard(size_t index, bool run_pool_sweep) {
  // Batched sweep first: every pooled filter on the shard gets its one
  // time update for this tick in a contiguous slab pass. Predictor Tick()
  // calls inside the replicas then see an already-advanced slot (their
  // PredictSlotUpTo is a no-op). Slots are mutually independent, so this
  // hoist is state-identical to per-replica predicts — see docs/PERF.md.
  // Skipped when the driver already ran SweepPools this tick.
  if (run_pool_sweep) pool_sets_[index]->PredictAll();
  shards_[index]->Tick();
}

void ShardedServer::SweepPools(ThreadPool* pool) {
  // Flatten every pool of every shard into one block list, so one big
  // shard's pool is chunked across threads instead of pinning its whole
  // sweep to one worker (the shard fan-out parallelizes *across* shards;
  // this parallelizes *within* them).
  sweep_units_.clear();
  size_t total_blocks = 0;
  for (auto& set : pool_sets_) {
    for (size_t i = 0; i < set->num_pools(); ++i) {
      FilterPool* p = set->pool(i);
      p->BeginSweep();
      if (p->num_blocks() == 0) continue;
      sweep_units_.push_back({p, total_blocks});
      total_blocks += p->num_blocks();
    }
  }
  if (total_blocks == 0) return;
  auto sweep_range = [this](size_t begin, size_t end) {
    // Locate the first unit containing `begin` (units are sorted by
    // first_block), then walk forward translating the global range into
    // per-pool block ranges.
    size_t lo = 0;
    size_t hi = sweep_units_.size();
    while (lo + 1 < hi) {
      size_t mid = (lo + hi) / 2;
      if (sweep_units_[mid].first_block <= begin) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    for (size_t u = lo;
         u < sweep_units_.size() && sweep_units_[u].first_block < end; ++u) {
      const SweepUnit& unit = sweep_units_[u];
      size_t unit_end = unit.first_block + unit.pool->num_blocks();
      size_t b = std::max(begin, unit.first_block);
      size_t e = std::min(end, unit_end);
      if (b < e) {
        unit.pool->SweepBlocks(b - unit.first_block, e - unit.first_block);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForRanges(total_blocks, sweep_range);
  } else {
    sweep_range(0, total_blocks);
  }
}

void ShardedServer::SetSimdEnabled(bool on) {
  for (auto& set : pool_sets_) set->set_simd(on);
}

Status ShardedServer::OnMessage(const Message& msg) {
  return shards_[ShardOf(msg.source_id)]->OnMessage(msg);
}

StatusOr<BoundedAnswer> ShardedServer::SourceValue(int32_t source_id) const {
  return shards_[ShardOf(source_id)]->SourceValue(source_id);
}

const ServerReplica* ShardedServer::replica(int32_t source_id) const {
  return shards_[ShardOf(source_id)]->replica(source_id);
}

bool ShardedServer::IsStale(int32_t source_id) const {
  return shards_[ShardOf(source_id)]->IsStale(source_id);
}

bool ShardedServer::IsDesynced(int32_t source_id) const {
  return shards_[ShardOf(source_id)]->IsDesynced(source_id);
}

StatusOr<const TickArchive*> ShardedServer::Archive(int32_t source_id) const {
  return shards_[ShardOf(source_id)]->Archive(source_id);
}

int64_t ShardedServer::ticks() const { return shards_.front()->ticks(); }

StatusOr<QueryResult> ShardedServer::HistoricalAggregate(int32_t source_id,
                                                         AggregateKind kind,
                                                         double t0,
                                                         double t1) const {
  return shards_[ShardOf(source_id)]->HistoricalAggregate(source_id, kind, t0,
                                                          t1);
}

size_t ShardedServer::num_sources() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_sources();
  return total;
}

int64_t ShardedServer::messages_processed() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->messages_processed();
  return total;
}

std::vector<int32_t> ShardedServer::SourceIds() const {
  std::vector<int32_t> ids;
  for (const auto& shard : shards_) {
    std::vector<int32_t> shard_ids = shard->SourceIds();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ShardedServer::SetStalenessLimit(int64_t max_silent_ticks) {
  for (auto& shard : shards_) shard->SetStalenessLimit(max_silent_ticks);
}

int64_t ShardedServer::staleness_limit() const {
  return shards_.front()->staleness_limit();
}

void ShardedServer::EnableArchiving(size_t capacity) {
  for (auto& shard : shards_) shard->EnableArchiving(capacity);
}

void ShardedServer::SetRecovery(const ReplicaRecoveryConfig& config) {
  for (auto& shard : shards_) shard->SetRecovery(config);
}

void ShardedServer::SetControlSink(StreamServer::ControlSink sink) {
  for (auto& shard : shards_) shard->SetControlSink(sink);
}

Status ShardedServer::PushBound(int32_t source_id, double delta) {
  return shards_[ShardOf(source_id)]->PushBound(source_id, delta);
}

Status ShardedServer::AddQuery(const std::string& name, QuerySpec spec) {
  return queries_.Add(*this, name, std::move(spec));
}

Status ShardedServer::RemoveQuery(const std::string& name) {
  return queries_.Remove(name);
}

void ShardedServer::EnableMetrics() {
  if (metrics_enabled()) return;
  shard_metrics_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    shard_metrics_.push_back(std::make_unique<obs::MetricRegistry>());
    shards_[i]->BindMetrics(shard_metrics_[i].get());
    // Recorder/watchdog/auditor enabled first: late-bind them to the new
    // arenas.
    if (!shard_recorders_.empty()) {
      shard_recorders_[i]->BindMetrics(shard_metrics_[i].get());
    }
    if (!shard_health_.empty()) {
      shard_health_[i]->BindMetrics(shard_metrics_[i].get());
    }
    if (!shard_audits_.empty()) {
      shard_audits_[i]->BindMetrics(shard_metrics_[i].get());
    }
  }
  driver_metrics_ = std::make_unique<obs::MetricRegistry>();
  queries_served_ = driver_metrics_->GetCounter("kc.fleet.queries_served");
  queries_failed_ = driver_metrics_->GetCounter("kc.fleet.queries_failed");
  queries_stale_ = driver_metrics_->GetCounter("kc.fleet.queries_stale");
}

void ShardedServer::EnableFlightRecorder(size_t capacity_per_source) {
  if (flight_recorder_enabled()) return;
  shard_recorders_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    shard_recorders_.push_back(
        std::make_unique<obs::FlightRecorder>(capacity_per_source));
    if (!shard_metrics_.empty()) {
      shard_recorders_[i]->BindMetrics(shard_metrics_[i].get());
    }
    if (!shard_health_.empty()) {
      shard_health_[i]->BindRecorder(shard_recorders_[i].get());
    }
    if (!shard_audits_.empty()) {
      shard_audits_[i]->BindRecorder(shard_recorders_[i].get());
    }
    shards_[i]->BindFlightRecorder(shard_recorders_[i].get());
  }
}

void ShardedServer::EnableHealth(const obs::HealthConfig& config) {
  if (health_enabled()) return;
  shard_health_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    shard_health_.push_back(std::make_unique<obs::HealthMonitor>(config));
    if (!shard_metrics_.empty()) {
      shard_health_[i]->BindMetrics(shard_metrics_[i].get());
    }
    if (!shard_recorders_.empty()) {
      shard_health_[i]->BindRecorder(shard_recorders_[i].get());
    }
    shards_[i]->BindHealth(shard_health_[i].get());
    // Audit enabled first: its sources can now feed the new watchdog.
    if (!shard_audits_.empty()) {
      shard_audits_[i]->BindHealth(shard_health_[i].get());
    }
  }
}

void ShardedServer::EnableAudit(const obs::AuditConfig& config) {
  if (audit_enabled()) return;
  shard_audits_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    shard_audits_.push_back(std::make_unique<obs::PrecisionAuditor>(config));
    if (!shard_metrics_.empty()) {
      shard_audits_[i]->BindMetrics(shard_metrics_[i].get());
    }
    if (!shard_recorders_.empty()) {
      shard_audits_[i]->BindRecorder(shard_recorders_[i].get());
    }
    if (!shard_health_.empty()) {
      shard_audits_[i]->BindHealth(shard_health_[i].get());
    }
    // Shard-local query evaluations land in the shard's own ledger;
    // merged reports re-merge them by name.
    shards_[i]->BindAudit(shard_audits_[i].get());
  }
  // The driver auditor holds only the cross-shard query ledger (its
  // kc.audit.* metrics live in the driver arena, where the all-zero
  // source gauges merge harmlessly).
  driver_audit_ = std::make_unique<obs::PrecisionAuditor>(config);
  if (driver_metrics_ != nullptr) {
    driver_audit_->BindMetrics(driver_metrics_.get());
  }
}

obs::AuditMergeView ShardedServer::AuditView() const {
  obs::AuditMergeView view;
  if (shard_audits_.empty()) return view;
  view.config = &shard_audits_.front()->config();
  view.arenas.reserve(shard_audits_.size() + 1);
  for (const auto& arena : shard_audits_) view.arenas.push_back(arena.get());
  view.arenas.push_back(driver_audit_.get());
  view.ids = SourceIds();
  view.arena_of = [this](int32_t id) -> const obs::PrecisionAuditor* {
    return shard_audits_[ShardOf(id)].get();
  };
  return view;
}

std::string ShardedServer::AuditReportText() const {
  if (shard_audits_.empty()) return std::string();
  return obs::MergedAuditReportText(AuditView());
}

std::string ShardedServer::AuditReportJson() const {
  if (shard_audits_.empty()) return "{}";
  return obs::MergedAuditReportJson(AuditView());
}

obs::AuditDoc ShardedServer::AuditReportDoc() const {
  if (shard_audits_.empty()) {
    obs::AuditDoc doc;
    doc.full = "{}";
    return doc;
  }
  return obs::MergedAuditReportDoc(AuditView());
}

std::string ShardedServer::AuditSummaryLine() const {
  if (shard_audits_.empty()) return std::string();
  return obs::MergedAuditSummaryLine(AuditView());
}

int64_t ShardedServer::AuditExhaustedSources() const {
  if (shard_audits_.empty()) return 0;
  int64_t exhausted = 0;
  for (int32_t id : SourceIds()) {
    const obs::SourceAudit* a = shard_audits_[ShardOf(id)]->Find(id);
    if (a != nullptr && a->slo_state() == obs::SloState::kExhausted) {
      ++exhausted;
    }
  }
  return exhausted;
}

obs::HealthState ShardedServer::HealthOf(int32_t source_id) const {
  if (shard_health_.empty()) return obs::HealthState::kOk;
  return shard_health_[ShardOf(source_id)]->StateOf(source_id);
}

std::string ShardedServer::DumpFlightRecorderText() const {
  if (shard_recorders_.empty()) return std::string();
  // A source lives on exactly one shard, so walking the merged sorted id
  // list gives the same dump for any worker-thread count.
  std::string out;
  for (int32_t id : SourceIds()) {
    out += shard_recorders_[ShardOf(id)]->DumpText(id);
  }
  return out;
}

std::string ShardedServer::DumpFlightRecorderJson() const {
  if (shard_recorders_.empty()) return "[]";
  std::string out = "[";
  bool first = true;
  for (int32_t id : SourceIds()) {
    if (shard_recorders_[ShardOf(id)]->Find(id) == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += shard_recorders_[ShardOf(id)]->DumpJson(id);
  }
  out += "]";
  return out;
}

std::string ShardedServer::HealthSummaryText() const {
  if (shard_health_.empty()) return std::string();
  // Same global ascending-id walk as the recorder dump.
  std::string out;
  for (int32_t id : SourceIds()) {
    out += shard_health_[ShardOf(id)]->SummaryLine(id);
  }
  return out;
}

void ShardedServer::MergeMetricsInto(obs::MetricRegistry* out) const {
  for (const auto& arena : shard_metrics_) out->MergeFrom(*arena);
  if (driver_metrics_ != nullptr) out->MergeFrom(*driver_metrics_);
}

void ShardedServer::RecordQueryOutcome(bool ok, bool stale) const {
  if (queries_served_ == nullptr) return;
  if (!ok) {
    queries_failed_->Inc();
    return;
  }
  queries_served_->Inc();
  if (stale) queries_stale_->Inc();
}

void ShardedServer::RecordQueryAudit(const std::string& name,
                                     const QueryResult* result) const {
  if (driver_audit_ == nullptr) return;
  if (result == nullptr) {
    driver_audit_->OnQuery(name, /*ok=*/false, false, false, false);
    return;
  }
  driver_audit_->OnQuery(name, /*ok=*/true, result->stale, result->degraded,
                         result->health != obs::HealthState::kOk);
}

StatusOr<QueryResult> ShardedServer::Evaluate(const std::string& name) const {
  StatusOr<QueryResult> result = queries_.Evaluate(*this, name);
  RecordQueryOutcome(result.ok(), result.ok() && result->stale);
  RecordQueryAudit(name, result.ok() ? &*result : nullptr);
  return result;
}

StatusOr<QueryResult> ShardedServer::EvaluateSpec(
    const QuerySpec& spec, const std::string& name) const {
  StatusOr<QueryResult> result = EvaluateSpecOn(*this, spec, name);
  RecordQueryOutcome(result.ok(), result.ok() && result->stale);
  RecordQueryAudit(name, result.ok() ? &*result : nullptr);
  return result;
}

std::vector<QueryResult> ShardedServer::EvaluateAll() const {
  std::vector<QueryResult> results = queries_.EvaluateAll(*this);
  for (const QueryResult& r : results) {
    RecordQueryOutcome(true, r.stale);
    RecordQueryAudit(r.name, &r);
  }
  return results;
}

std::vector<QueryResult> ShardedServer::EvaluateDue() {
  std::vector<QueryResult> results = queries_.EvaluateDue(*this);
  for (const QueryResult& r : results) {
    RecordQueryOutcome(true, r.stale);
    RecordQueryAudit(r.name, &r);
  }
  return results;
}

StatusOr<QuerySpec> ShardedServer::GetQuery(const std::string& name) const {
  return queries_.Get(name);
}

std::vector<std::string> ShardedServer::QueryNames() const {
  return queries_.Names();
}

}  // namespace kc
