#include "fleet/thread_pool.h"

namespace kc {

namespace {

/// The pool whose batch body is executing on this thread, if any. Lets
/// ParallelFor detect re-entrant calls from inside a body — previously a
/// deadlock: the nested batch overwrote batch_/generation_, workers
/// blocked inside the outer batch never picked it up, and the nested
/// driver waited forever on completions that could not arrive.
thread_local const ThreadPool* t_running_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // Re-entry from inside one of this pool's own bodies (nested batched
  // work) runs inline on the calling thread: the outer batch already owns
  // the workers, and publishing a second batch would deadlock both.
  if (workers_.empty() || n == 1 || t_running_pool == this) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();
  RunItems(*batch);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch->completed == batch->n; });
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    RunItems(*batch);
  }
}

void ThreadPool::RunItems(Batch& batch) {
  const ThreadPool* prev = t_running_pool;
  t_running_pool = this;
  for (;;) {
    size_t i = batch.next.fetch_add(1);
    if (i >= batch.n) break;
    (*batch.body)(i);
    std::lock_guard<std::mutex> lock(mu_);
    if (++batch.completed == batch.n) done_cv_.notify_all();
  }
  t_running_pool = prev;
}

}  // namespace kc
