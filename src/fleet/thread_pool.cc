#include "fleet/thread_pool.h"

namespace kc {

namespace {

/// The pool whose batch body is executing on this thread, if any. Lets
/// ParallelFor detect re-entrant calls from inside a body — previously a
/// deadlock: the nested batch overwrote batch_/generation_, workers
/// blocked inside the outer batch never picked it up, and the nested
/// driver waited forever on completions that could not arrive.
thread_local const ThreadPool* t_running_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(size_t n, FuncRef body) {
  if (n == 0) return;
  // Re-entry from inside one of this pool's own bodies (nested batched
  // work) runs inline on the calling thread: the outer batch already owns
  // the workers, and publishing a second batch would deadlock both.
  if (workers_.empty() || n == 1 || t_running_pool == this) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::shared_ptr<Batch> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Recycle the previous batch unless a straggler worker still holds
    // it (holders tracks threads inside RunItems, so holders == 0 means
    // nobody can touch the old fields again without re-reading batch_
    // under this mutex). Stragglers that wake after the swap grab the
    // *current* batch and legitimately steal its items.
    if (batch_ == nullptr || batch_->holders != 0) {
      batch_ = std::make_shared<Batch>();
    }
    batch_->body = body;
    batch_->n = n;
    batch_->next.store(0, std::memory_order_relaxed);
    batch_->completed = 0;
    batch_->holders = 1;  // The driver.
    ++generation_;
    batch = batch_;
  }
  work_cv_.notify_all();
  RunItems(batch);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch->completed == batch->n; });
}

void ThreadPool::ParallelForRanges(size_t n, RangeFuncRef body) {
  const size_t chunks = NumChunks(n);
  if (chunks == 0) return;
  const size_t base = n / chunks;
  const size_t rem = n % chunks;
  ParallelFor(chunks, [&](size_t i) {
    size_t begin = i * base + (i < rem ? i : rem);
    size_t end = begin + base + (i < rem ? 1 : 0);
    body(begin, end);
  });
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;
      ++batch->holders;
    }
    RunItems(batch);
  }
}

void ThreadPool::RunItems(const std::shared_ptr<Batch>& batch) {
  const ThreadPool* prev = t_running_pool;
  t_running_pool = this;
  // n and body are stable while holders > 0: the driver only resets a
  // batch after observing holders == 0 under mu_, and this thread
  // incremented holders under mu_ before reading them.
  const size_t n = batch->n;
  const FuncRef body = batch->body;
  for (;;) {
    size_t i = batch->next.fetch_add(1);
    if (i >= n) break;
    body(i);
    std::lock_guard<std::mutex> lock(mu_);
    if (++batch->completed == n) done_cv_.notify_all();
  }
  t_running_pool = prev;
  std::lock_guard<std::mutex> lock(mu_);
  --batch->holders;
}

}  // namespace kc
