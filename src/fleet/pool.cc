#include "fleet/pool.h"

#include <cassert>

#include "common/chisq.h"
#include "linalg/decomp.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"

namespace kc {

// ---------------------------------------------------------------- FilterPool

FilterPool::FilterPool(StateSpaceModel model, KalmanFilter::UpdateForm form)
    : model_(std::move(model)), form_(form) {
  assert(model_.Validate().ok());
}

bool FilterPool::Matches(const StateSpaceModel& model,
                         KalmanFilter::UpdateForm form) const {
  return form == form_ && model.f == model_.f && model.q == model_.q &&
         model.h == model_.h && model.r == model_.r;
}

int32_t FilterPool::Acquire(int32_t owner_id) {
  int32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<int32_t>(x_.size());
    size_t n = model_.state_dim();
    x_.emplace_back(n);          // Zero vector.
    p_.emplace_back(n, n);       // Zero matrix.
    active_.push_back(0);
    owner_.push_back(kNoSlot);
    predicts_.push_back(0);
    last_nis_.push_back(0.0);
  }
  active_[slot] = 1;
  owner_[slot] = owner_id;
  predicts_[slot] = 0;
  last_nis_[slot] = 0.0;
  ++num_active_;
  return slot;
}

void FilterPool::Release(int32_t slot) {
  assert(IsActive(slot));
  // Zero on free: a re-registered source id acquiring this slot later
  // must never observe the previous tenant's state or covariance.
  x_[slot].SetZero();
  p_[slot].SetZero();
  active_[slot] = 0;
  owner_[slot] = kNoSlot;
  predicts_[slot] = 0;
  last_nis_[slot] = 0.0;
  --num_active_;
  free_.push_back(slot);
}

void FilterPool::ResetSlot(int32_t slot, const Vector& x0, const Matrix& p0) {
  assert(IsActive(slot));
  assert(x0.size() == model_.state_dim());
  assert(p0.rows() == model_.state_dim() && p0.cols() == model_.state_dim());
  x_[slot] = x0;
  p_[slot] = p0;
  predicts_[slot] = 0;
  last_nis_[slot] = 0.0;
}

void FilterPool::PredictRaw(int32_t slot) {
  // Same kernel sequence as KalmanFilter::Predict, on slab entries: the
  // pooled time update is bit-identical to the per-object one.
  Vector& x = x_[slot];
  Matrix& p = p_[slot];
  MultiplyInto(model_.f, x, &ws_.fx);
  x = ws_.fx;
  SandwichInto(model_.f, p, &ws_.tmp1, &ws_.j1);
  AddInto(ws_.j1, model_.q, &p);
  p.Symmetrize();
}

void FilterPool::PredictSlot(int32_t slot) {
  assert(IsActive(slot));
  PredictRaw(slot);
  ++predicts_[slot];
}

void FilterPool::PredictSlotUpTo(int32_t slot, int64_t epoch) {
  assert(IsActive(slot));
  while (predicts_[slot] < epoch) {
    PredictRaw(slot);
    ++predicts_[slot];
  }
}

size_t FilterPool::PredictAll() {
  // The batched tick: one linear sweep over the slabs. Slots are mutually
  // independent, so sweep order cannot affect any slot's state.
  size_t advanced = 0;
  const size_t n = x_.size();
  for (size_t i = 0; i < n; ++i) {
    if (active_[i] == 0) continue;
    PredictRaw(static_cast<int32_t>(i));
    ++predicts_[i];
    ++advanced;
  }
  return advanced;
}

Status FilterPool::UpdateSlot(int32_t slot, const Vector& z) {
  assert(IsActive(slot));
  // Same kernel sequence as KalmanFilter::Update (minus the log-likelihood
  // diagnostic, which nothing on the pooled path reads): bit-identical
  // state, covariance, and NIS.
  if (z.size() != model_.obs_dim()) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  Vector& x = x_[slot];
  Matrix& p = p_[slot];
  const Matrix& h = model_.h;
  MultiplyInto(h, x, &ws_.hx);
  SubInto(z, ws_.hx, &ws_.nu);

  SandwichInto(h, p, &ws_.tmp1, &ws_.s);
  ws_.s += model_.r;
  ws_.s.Symmetrize();
  if (!Cholesky::FactorInto(ws_.s, &ws_.l)) {
    return Status::FailedPrecondition("innovation covariance not PD");
  }

  // Gain K = P H^T S^{-1}; computed as solve(S, H P)^T to stay factored.
  MultiplyTransposedInto(p, h, &ws_.ph_t);
  TransposeInto(ws_.ph_t, &ws_.tmp1);
  Cholesky::SolveInto(ws_.l, ws_.tmp1, &ws_.kt);
  TransposeInto(ws_.kt, &ws_.k);

  MultiplyInto(ws_.k, ws_.nu, &ws_.knu);
  x += ws_.knu;

  MultiplyInto(ws_.k, h, &ws_.kh);
  IdentityMinusInto(ws_.kh, &ws_.i_kh);
  if (form_ == KalmanFilter::UpdateForm::kJoseph) {
    SandwichInto(ws_.i_kh, p, &ws_.tmp1, &ws_.j1);
    SandwichInto(ws_.k, model_.r, &ws_.tmp1, &ws_.krk);
    AddInto(ws_.j1, ws_.krk, &p);
  } else {
    MultiplyInto(ws_.i_kh, p, &ws_.j1);
    p = ws_.j1;
  }
  p.Symmetrize();

  Cholesky::SolveInto(ws_.l, ws_.nu, &ws_.sinv_nu);
  last_nis_[slot] = ws_.nu.Dot(ws_.sinv_nu);
  return Status::Ok();
}

size_t FilterPool::UpdateBatch(const int32_t* slots, const Vector* zs,
                               size_t n) {
  size_t updated = 0;
  for (size_t i = 0; i < n; ++i) {
    if (UpdateSlot(slots[i], zs[i]).ok()) ++updated;
  }
  return updated;
}

double FilterPool::GateSlot(int32_t slot, const Vector& z) {
  assert(IsActive(slot));
  // Exactly KalmanPredictor's gate: nu = z - H x; S = H P H^T + R;
  // NIS = nu' S^{-1} nu via the Cholesky factor. The kernels are
  // bit-identical to the value-returning operators the per-object gate
  // uses (see linalg/kernels.h).
  const Vector& x = x_[slot];
  const Matrix& p = p_[slot];
  MultiplyInto(model_.h, x, &ws_.hx);
  SubInto(z, ws_.hx, &ws_.nu);
  SandwichInto(model_.h, p, &ws_.tmp1, &ws_.s);
  ws_.s += model_.r;
  ws_.s.Symmetrize();
  if (!Cholesky::FactorInto(ws_.s, &ws_.l)) return -1.0;
  Cholesky::SolveInto(ws_.l, ws_.nu, &ws_.sinv_nu);
  return ws_.nu.Dot(ws_.sinv_nu);
}

void FilterPool::GateBatch(const int32_t* slots, const Vector* zs, size_t n,
                           double* nis_out) {
  for (size_t i = 0; i < n; ++i) nis_out[i] = GateSlot(slots[i], zs[i]);
}

Vector FilterPool::PredictObservationOf(int32_t slot) const {
  assert(IsActive(slot));
  return model_.h * x_[slot];
}

std::vector<double> FilterPool::SerializeSlot(int32_t slot) const {
  assert(IsActive(slot));
  const Vector& x = x_[slot];
  const Matrix& p = p_[slot];
  std::vector<double> buf;
  buf.reserve(x.size() + x.size() * x.size());
  buf.insert(buf.end(), x.data().begin(), x.data().end());
  buf.insert(buf.end(), p.data().begin(), p.data().end());
  return buf;
}

Status FilterPool::DeserializeSlot(int32_t slot,
                                   const std::vector<double>& payload) {
  assert(IsActive(slot));
  size_t n = model_.state_dim();
  if (payload.size() != n + n * n) {
    return Status::InvalidArgument("serialized state has wrong size");
  }
  Vector& x = x_[slot];
  Matrix& p = p_[slot];
  for (size_t i = 0; i < n; ++i) x[i] = payload[i];
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) p(r, c) = payload[n + r * n + c];
  }
  p.Symmetrize();
  return Status::Ok();
}

Status FilterPool::OverwriteStateOf(int32_t slot,
                                    const std::vector<double>& payload) {
  assert(IsActive(slot));
  size_t n = model_.state_dim();
  if (payload.size() != n) {
    return Status::InvalidArgument("state payload has wrong size");
  }
  Vector& x = x_[slot];
  for (size_t i = 0; i < n; ++i) x[i] = payload[i];
  // The per-object path round-trips the unchanged P through
  // DeserializeState, whose final Symmetrize we replicate for exact
  // behavioral equivalence.
  p_[slot].Symmetrize();
  return Status::Ok();
}

// ------------------------------------------------------------- FilterPoolSet

FilterPool* FilterPoolSet::PoolFor(const StateSpaceModel& model,
                                   KalmanFilter::UpdateForm form) {
  // Linear scan: a deployment has a handful of distinct models, not
  // thousands, and PoolFor runs only at source registration.
  for (auto& pool : pools_) {
    if (pool->Matches(model, form)) return pool.get();
  }
  pools_.push_back(std::make_unique<FilterPool>(model, form));
  return pools_.back().get();
}

size_t FilterPoolSet::PredictAll() {
  size_t advanced = 0;
  for (auto& pool : pools_) advanced += pool->PredictAll();
  return advanced;
}

size_t FilterPoolSet::num_active() const {
  size_t total = 0;
  for (const auto& pool : pools_) total += pool->num_active();
  return total;
}

// ----------------------------------------------------- PooledKalmanPredictor

PooledKalmanPredictor::PooledKalmanPredictor(KalmanPredictor::Config config,
                                             FilterPoolSet* pools)
    : config_(std::move(config)), pools_(pools) {
  assert(pools_ != nullptr);
  assert(config_.model.Validate().ok());
  // Adaptive noise estimation mutates the per-source model and cannot
  // share a pool; MakePooledPredictor filters such configs out.
  assert(!config_.adaptive.has_value());
  if (config_.outlier_gate_prob > 0.0 && config_.outlier_gate_prob < 1.0) {
    gate_threshold_ =
        ChiSquaredQuantile(config_.outlier_gate_prob, config_.model.obs_dim());
  }
}

PooledKalmanPredictor::~PooledKalmanPredictor() { ReleaseSlots(); }

void PooledKalmanPredictor::ReleaseSlots() {
  if (pool_ == nullptr) return;
  if (shadow_slot_ != FilterPool::kNoSlot) pool_->Release(shadow_slot_);
  if (private_slot_ != FilterPool::kNoSlot) pool_->Release(private_slot_);
  shadow_slot_ = FilterPool::kNoSlot;
  private_slot_ = FilterPool::kNoSlot;
}

void PooledKalmanPredictor::Init(const Reading& first) {
  assert(first.value.size() == config_.model.obs_dim());
  if (pool_ == nullptr) {
    pool_ = pools_->PoolFor(config_.model, config_.update_form);
  }
  // Same lift as KalmanPredictor::Init: H^T z places observed values in
  // their state slots, derivatives start at zero.
  size_t n = config_.model.state_dim();
  Vector x0 = config_.model.h.Transposed() * first.value;
  Matrix p0 = Matrix::ScalarDiagonal(n, config_.init_var);
  if (shadow_slot_ == FilterPool::kNoSlot) {
    shadow_slot_ = pool_->Acquire(/*owner_id=*/-1);
  }
  pool_->ResetSlot(shadow_slot_, x0, p0);
  if (config_.sync_mode != KalmanPredictor::SyncMode::kMeasurement) {
    // The private slot is materialized lazily (EnsurePrivateSlot): a
    // server replica clone never observes locally, so its private filter
    // would only waste a slot — and a batched time update per tick.
    if (private_slot_ != FilterPool::kNoSlot) {
      pool_->ResetSlot(private_slot_, x0, p0);
      private_pending_ = false;
    } else {
      private_pending_ = true;
      init_value_ = first.value;
    }
  } else {
    if (private_slot_ != FilterPool::kNoSlot) {
      pool_->Release(private_slot_);
      private_slot_ = FilterPool::kNoSlot;
    }
    private_pending_ = false;
  }
  shadow_ticks_ = 0;
  private_ticks_ = 0;
  consecutive_rejects_ = 0;
  outliers_rejected_ = 0;
  last_nis_ = -1.0;
  last_observed_ = first;
}

void PooledKalmanPredictor::EnsurePrivateSlot() {
  if (!private_pending_) return;
  size_t n = config_.model.state_dim();
  Vector x0 = config_.model.h.Transposed() * init_value_;
  Matrix p0 = Matrix::ScalarDiagonal(n, config_.init_var);
  private_slot_ = pool_->Acquire(/*owner_id=*/-1);
  pool_->ResetSlot(private_slot_, x0, p0);
  private_pending_ = false;
}

void PooledKalmanPredictor::Tick() {
  assert(shadow_slot_ != FilterPool::kNoSlot);
  ++shadow_ticks_;
  // A no-op when the shard's batched PredictAll already advanced the
  // slot this tick; does the time update itself in standalone use.
  pool_->PredictSlotUpTo(shadow_slot_, shadow_ticks_);
}

void PooledKalmanPredictor::ObserveLocal(const Reading& measured) {
  last_observed_ = measured;
  if (config_.sync_mode == KalmanPredictor::SyncMode::kMeasurement) return;
  EnsurePrivateSlot();
  ++private_ticks_;
  pool_->PredictSlotUpTo(private_slot_, private_ticks_);

  if (gate_threshold_ > 0.0) {
    // Identical control flow to KalmanPredictor's innovation gate,
    // including the conclusive-gate-only reset of the rejection run.
    double nis = pool_->GateSlot(private_slot_, measured.value);
    if (nis >= 0.0) {
      last_nis_ = nis;  // A rejected reading is still a consistency sample.
      if (nis > gate_threshold_) {
        if (consecutive_rejects_ + 1 < config_.outlier_gate_limit) {
          ++consecutive_rejects_;
          ++outliers_rejected_;
          if (metrics_.outliers_rejected) metrics_.outliers_rejected->Inc();
          return;  // Predict-only this tick.
        }
        if (metrics_.forced_accepts) metrics_.forced_accepts->Inc();
      }
    }
    consecutive_rejects_ = 0;
  }

  Status s = pool_->UpdateSlot(private_slot_, measured.value);
  assert(s.ok());
  (void)s;
  last_nis_ = pool_->LastNisOf(private_slot_);
}

Vector PooledKalmanPredictor::Target() const {
  if (config_.sync_mode != KalmanPredictor::SyncMode::kMeasurement &&
      (private_slot_ != FilterPool::kNoSlot || private_pending_)) {
    // Materializing the pending slot is logically const: the returned
    // value is exactly what the per-object path computes from x0.
    auto* self = const_cast<PooledKalmanPredictor*>(this);
    self->EnsurePrivateSlot();
    return pool_->PredictObservationOf(private_slot_);
  }
  return last_observed_.value;
}

Vector PooledKalmanPredictor::Predict() const {
  assert(shadow_slot_ != FilterPool::kNoSlot);
  return pool_->PredictObservationOf(shadow_slot_);
}

std::vector<double> PooledKalmanPredictor::EncodeCorrection(
    const Reading& measured) const {
  switch (config_.sync_mode) {
    case KalmanPredictor::SyncMode::kMeasurement:
      return measured.value.data();
    case KalmanPredictor::SyncMode::kState:
      const_cast<PooledKalmanPredictor*>(this)->EnsurePrivateSlot();
      return pool_->StateOf(private_slot_).data();
    case KalmanPredictor::SyncMode::kStateAndCov:
      const_cast<PooledKalmanPredictor*>(this)->EnsurePrivateSlot();
      return pool_->SerializeSlot(private_slot_);
  }
  return {};
}

Status PooledKalmanPredictor::ApplyCorrection(
    int64_t /*seq*/, double /*time*/, const std::vector<double>& payload) {
  if (shadow_slot_ == FilterPool::kNoSlot) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  switch (config_.sync_mode) {
    case KalmanPredictor::SyncMode::kMeasurement: {
      if (payload.size() != config_.model.obs_dim()) {
        return Status::InvalidArgument("correction payload has wrong size");
      }
      z_scratch_.ResizeUninit(payload.size());
      for (size_t i = 0; i < payload.size(); ++i) z_scratch_[i] = payload[i];
      return pool_->UpdateSlot(shadow_slot_, z_scratch_);
    }
    case KalmanPredictor::SyncMode::kState:
      return pool_->OverwriteStateOf(shadow_slot_, payload);
    case KalmanPredictor::SyncMode::kStateAndCov:
      return pool_->DeserializeSlot(shadow_slot_, payload);
  }
  return Status::Internal("unreachable");
}

std::vector<double> PooledKalmanPredictor::EncodeFullState() const {
  assert(shadow_slot_ != FilterPool::kNoSlot);
  return pool_->SerializeSlot(shadow_slot_);
}

Status PooledKalmanPredictor::ApplyFullState(
    const std::vector<double>& payload) {
  if (shadow_slot_ == FilterPool::kNoSlot) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  if (metrics_.filter_resets) metrics_.filter_resets->Inc();
  return pool_->DeserializeSlot(shadow_slot_, payload);
}

void PooledKalmanPredictor::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics();
    return;
  }
  metrics_.outliers_rejected =
      registry->GetCounter("kc.kalman.outliers_rejected");
  metrics_.forced_accepts =
      registry->GetCounter("kc.kalman.gate_forced_accepts");
  metrics_.filter_resets = registry->GetCounter("kc.kalman.filter_resets");
}

std::unique_ptr<Predictor> PooledKalmanPredictor::Clone() const {
  return std::make_unique<PooledKalmanPredictor>(config_, pools_);
}

std::string PooledKalmanPredictor::name() const {
  switch (config_.sync_mode) {
    case KalmanPredictor::SyncMode::kState:
      return "kalman";
    case KalmanPredictor::SyncMode::kStateAndCov:
      return "kalman_cov";
    case KalmanPredictor::SyncMode::kMeasurement:
      return "kalman_meas";
  }
  return "kalman";
}

std::unique_ptr<Predictor> MakePooledPredictor(const Predictor& prototype,
                                               FilterPoolSet* pools) {
  const auto* kp = dynamic_cast<const KalmanPredictor*>(&prototype);
  if (kp == nullptr) return nullptr;
  const KalmanPredictor::Config& config = kp->config();
  if (config.adaptive.has_value()) return nullptr;
  if (config.model.state_dim() > Vector::kInlineCap ||
      config.model.state_dim() * config.model.state_dim() >
          Matrix::kInlineCap ||
      config.model.obs_dim() > Vector::kInlineCap) {
    return nullptr;  // Outside the inline-slab envelope.
  }
  return std::make_unique<PooledKalmanPredictor>(config, pools);
}

}  // namespace kc
