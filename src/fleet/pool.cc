#include "fleet/pool.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>

#include "common/chisq.h"
#include "linalg/decomp.h"
#include "linalg/kernels.h"
#include "obs/metrics.h"

namespace kc {

// ---------------------------------------------------------------- FilterPool

FilterPool::FilterPool(StateSpaceModel model, KalmanFilter::UpdateForm form)
    : model_(std::move(model)),
      form_(form),
      dim_(model_.state_dim()),
      simd_fn_(batch::SimdPredictFn(dim_)),
      portable_fn_(batch::PortablePredictFn(dim_)) {
  assert(model_.Validate().ok());
}

bool FilterPool::Matches(const StateSpaceModel& model,
                         KalmanFilter::UpdateForm form) const {
  return form == form_ && model.f == model_.f && model.q == model_.q &&
         model.h == model_.h && model.r == model_.r;
}

void FilterPool::GrowBlock() {
  xs_.resize(xs_.size() + dim_ * kLanes, 0.0);
  ps_.resize(ps_.size() + dim_ * dim_ * kLanes, 0.0);
  block_mask_.push_back(0);
  owner_.resize(owner_.size() + kLanes, kNoSlot);
  epoch_base_.resize(epoch_base_.size() + kLanes, 0);
  last_nis_.resize(last_nis_.size() + kLanes, 0.0);
}

int32_t FilterPool::Acquire(int32_t owner_id) {
  int32_t slot;
  if (!free_.empty()) {
    // Min-heap pop: always reuse the lowest-indexed freed slot, keeping
    // active slots packed toward the front of the slabs (slab locality
    // for the sweep) regardless of release order.
    std::pop_heap(free_.begin(), free_.end(), std::greater<int32_t>());
    slot = free_.back();
    free_.pop_back();
  } else {
    if (size_ == block_mask_.size() * kLanes) GrowBlock();
    slot = static_cast<int32_t>(size_++);
  }
  block_mask_[static_cast<size_t>(slot) / kLanes] |=
      static_cast<uint8_t>(1u << (static_cast<size_t>(slot) % kLanes));
  owner_[slot] = owner_id;
  // Effective epoch = sweep_count_ + epoch_base_, so "epoch 0 now" is an
  // offset of -sweep_count_ (sweeps before this slot existed don't count).
  epoch_base_[slot] = -sweep_count_;
  last_nis_[slot] = 0.0;
  ++num_active_;
  return slot;
}

void FilterPool::Release(int32_t slot) {
  assert(IsActive(slot));
  // Zero on free: a re-registered source id acquiring this slot later
  // must never observe the previous tenant's state or covariance — and
  // the batch kernel computes on (then discards) inactive lanes, which
  // must hold finite values.
  for (size_t e = 0; e < dim_; ++e) XAt(slot, e) = 0.0;
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = 0; c < dim_; ++c) PAt(slot, r, c) = 0.0;
  }
  block_mask_[static_cast<size_t>(slot) / kLanes] &=
      static_cast<uint8_t>(~(1u << (static_cast<size_t>(slot) % kLanes)));
  owner_[slot] = kNoSlot;
  epoch_base_[slot] = 0;
  last_nis_[slot] = 0.0;
  --num_active_;
  free_.push_back(slot);
  std::push_heap(free_.begin(), free_.end(), std::greater<int32_t>());
}

void FilterPool::ResetSlot(int32_t slot, const Vector& x0, const Matrix& p0) {
  assert(IsActive(slot));
  assert(x0.size() == dim_);
  assert(p0.rows() == dim_ && p0.cols() == dim_);
  StoreSlotFrom(slot, x0, p0);
  epoch_base_[slot] = -sweep_count_;
  last_nis_[slot] = 0.0;
}

void FilterPool::LoadSlotInto(int32_t slot, Vector* x, Matrix* p) const {
  x->ResizeUninit(dim_);
  p->ResizeUninit(dim_, dim_);
  for (size_t e = 0; e < dim_; ++e) (*x)[e] = XAt(slot, e);
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = 0; c < dim_; ++c) (*p)(r, c) = PAt(slot, r, c);
  }
}

void FilterPool::StoreSlotFrom(int32_t slot, const Vector& x,
                               const Matrix& p) {
  for (size_t e = 0; e < dim_; ++e) XAt(slot, e) = x[e];
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = 0; c < dim_; ++c) PAt(slot, r, c) = p(r, c);
  }
}

void FilterPool::SymmetrizeSlotCov(int32_t slot) {
  // Same op order as Matrix::Symmetrize, on the strided slab entries.
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = r + 1; c < dim_; ++c) {
      double avg = 0.5 * (PAt(slot, r, c) + PAt(slot, c, r));
      PAt(slot, r, c) = avg;
      PAt(slot, c, r) = avg;
    }
  }
}

void FilterPool::PredictScalarSlot(int32_t slot, Workspace* ws) {
  // Same kernel sequence as KalmanFilter::Predict, on gathered slab
  // entries: the pooled time update is bit-identical to the per-object
  // one (and to the batch kernel, which runs this sequence per lane).
  LoadSlotInto(slot, &ws->x, &ws->p);
  MultiplyInto(model_.f, ws->x, &ws->fx);
  ws->x = ws->fx;
  SandwichInto(model_.f, ws->p, &ws->tmp1, &ws->j1);
  AddInto(ws->j1, model_.q, &ws->p);
  ws->p.Symmetrize();
  StoreSlotFrom(slot, ws->x, ws->p);
}

void FilterPool::PredictRaw(int32_t slot) {
  batch::PredictBlockFn fn = simd_ ? simd_fn_ : portable_fn_;
  if (fn != nullptr) {
    // Single-lane-mask call of the very kernel the sweep uses: computes
    // all four lanes, stores one — bit-identical to a sweep over this
    // block by construction.
    const size_t block = static_cast<size_t>(slot) / kLanes;
    fn(model_.f.data().data(), model_.q.data().data(), XBlock(block),
       PBlock(block), 1u << (static_cast<size_t>(slot) % kLanes));
    return;
  }
  PredictScalarSlot(slot, &ws_);
}

void FilterPool::PredictSlot(int32_t slot) {
  assert(IsActive(slot));
  PredictRaw(slot);
  ++epoch_base_[slot];
}

void FilterPool::PredictSlotUpTo(int32_t slot, int64_t epoch) {
  assert(IsActive(slot));
  while (PredictEpochOf(slot) < epoch) {
    PredictRaw(slot);
    ++epoch_base_[slot];
  }
}

void FilterPool::BeginSweep() { ++sweep_count_; }

size_t FilterPool::SweepBlocks(size_t begin_block, size_t end_block) {
  // The batched tick: a linear walk over whole blocks, vectorized lane-
  // per-slot. Slots are mutually independent, so neither sweep order nor
  // chunking across threads can affect any slot's state; blocks with no
  // active slots cost one mask test. Thread-safe for disjoint ranges:
  // only block-local slab memory and shared read-only model data are
  // touched (no pool workspace).
  batch::PredictBlockFn fn = simd_ ? simd_fn_ : portable_fn_;
  size_t advanced = 0;
  if (fn != nullptr) {
    const double* f = model_.f.data().data();
    const double* q = model_.q.data().data();
    for (size_t b = begin_block; b < end_block; ++b) {
      unsigned mask = block_mask_[b];
      if (mask == 0) continue;
      fn(f, q, XBlock(b), PBlock(b), mask);
      advanced += static_cast<size_t>(std::popcount(mask));
    }
  } else {
    // dim > batch::kMaxDim: scalar per-slot fallback. Stack-local scratch
    // keeps concurrent chunk sweeps off the shared workspace.
    Workspace ws;
    for (size_t b = begin_block; b < end_block; ++b) {
      unsigned mask = block_mask_[b];
      if (mask == 0) continue;
      for (size_t l = 0; l < kLanes; ++l) {
        if ((mask & (1u << l)) == 0) continue;
        PredictScalarSlot(static_cast<int32_t>(b * kLanes + l), &ws);
        ++advanced;
      }
    }
  }
  return advanced;
}

size_t FilterPool::PredictAll() {
  BeginSweep();
  return SweepBlocks(0, num_blocks());
}

Status FilterPool::UpdateSlot(int32_t slot, const Vector& z) {
  assert(IsActive(slot));
  // Same kernel sequence as KalmanFilter::Update (minus the log-likelihood
  // diagnostic, which nothing on the pooled path reads): bit-identical
  // state, covariance, and NIS. Gather, update, scatter — a failed update
  // returns before the scatter, leaving the slot untouched.
  if (z.size() != model_.obs_dim()) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  LoadSlotInto(slot, &ws_.x, &ws_.p);
  const Matrix& h = model_.h;
  MultiplyInto(h, ws_.x, &ws_.hx);
  SubInto(z, ws_.hx, &ws_.nu);

  SandwichInto(h, ws_.p, &ws_.tmp1, &ws_.s);
  ws_.s += model_.r;
  ws_.s.Symmetrize();
  if (!Cholesky::FactorInto(ws_.s, &ws_.l)) {
    return Status::FailedPrecondition("innovation covariance not PD");
  }

  // Gain K = P H^T S^{-1}; computed as solve(S, H P)^T to stay factored.
  MultiplyTransposedInto(ws_.p, h, &ws_.ph_t);
  TransposeInto(ws_.ph_t, &ws_.tmp1);
  Cholesky::SolveInto(ws_.l, ws_.tmp1, &ws_.kt);
  TransposeInto(ws_.kt, &ws_.k);

  MultiplyInto(ws_.k, ws_.nu, &ws_.knu);
  ws_.x += ws_.knu;

  MultiplyInto(ws_.k, h, &ws_.kh);
  IdentityMinusInto(ws_.kh, &ws_.i_kh);
  if (form_ == KalmanFilter::UpdateForm::kJoseph) {
    SandwichInto(ws_.i_kh, ws_.p, &ws_.tmp1, &ws_.j1);
    SandwichInto(ws_.k, model_.r, &ws_.tmp1, &ws_.krk);
    AddInto(ws_.j1, ws_.krk, &ws_.p);
  } else {
    MultiplyInto(ws_.i_kh, ws_.p, &ws_.j1);
    ws_.p = ws_.j1;
  }
  ws_.p.Symmetrize();

  Cholesky::SolveInto(ws_.l, ws_.nu, &ws_.sinv_nu);
  last_nis_[slot] = ws_.nu.Dot(ws_.sinv_nu);
  StoreSlotFrom(slot, ws_.x, ws_.p);
  return Status::Ok();
}

size_t FilterPool::UpdateBatch(const int32_t* slots, const Vector* zs,
                               size_t n) {
  size_t updated = 0;
  for (size_t i = 0; i < n; ++i) {
    if (UpdateSlot(slots[i], zs[i]).ok()) ++updated;
  }
  return updated;
}

double FilterPool::GateSlot(int32_t slot, const Vector& z) {
  assert(IsActive(slot));
  // Exactly KalmanPredictor's gate: nu = z - H x; S = H P H^T + R;
  // NIS = nu' S^{-1} nu via the Cholesky factor. The kernels are
  // bit-identical to the value-returning operators the per-object gate
  // uses (see linalg/kernels.h). Read-only: gathers, never scatters.
  LoadSlotInto(slot, &ws_.x, &ws_.p);
  MultiplyInto(model_.h, ws_.x, &ws_.hx);
  SubInto(z, ws_.hx, &ws_.nu);
  SandwichInto(model_.h, ws_.p, &ws_.tmp1, &ws_.s);
  ws_.s += model_.r;
  ws_.s.Symmetrize();
  if (!Cholesky::FactorInto(ws_.s, &ws_.l)) return -1.0;
  Cholesky::SolveInto(ws_.l, ws_.nu, &ws_.sinv_nu);
  return ws_.nu.Dot(ws_.sinv_nu);
}

void FilterPool::GateBatch(const int32_t* slots, const Vector* zs, size_t n,
                           double* nis_out) {
  for (size_t i = 0; i < n; ++i) nis_out[i] = GateSlot(slots[i], zs[i]);
}

Vector FilterPool::StateOf(int32_t slot) const {
  assert(IsActive(slot));
  Vector x;
  x.ResizeUninit(dim_);
  for (size_t e = 0; e < dim_; ++e) x[e] = XAt(slot, e);
  return x;
}

Matrix FilterPool::CovarianceOf(int32_t slot) const {
  assert(IsActive(slot));
  Matrix p;
  p.ResizeUninit(dim_, dim_);
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = 0; c < dim_; ++c) p(r, c) = PAt(slot, r, c);
  }
  return p;
}

Vector FilterPool::PredictObservationOf(int32_t slot) const {
  assert(IsActive(slot));
  return model_.h * StateOf(slot);
}

std::vector<double> FilterPool::SerializeSlot(int32_t slot) const {
  assert(IsActive(slot));
  std::vector<double> buf;
  buf.reserve(dim_ + dim_ * dim_);
  for (size_t e = 0; e < dim_; ++e) buf.push_back(XAt(slot, e));
  for (size_t r = 0; r < dim_; ++r) {
    for (size_t c = 0; c < dim_; ++c) buf.push_back(PAt(slot, r, c));
  }
  return buf;
}

Status FilterPool::DeserializeSlot(int32_t slot,
                                   const std::vector<double>& payload) {
  assert(IsActive(slot));
  const size_t n = dim_;
  if (payload.size() != n + n * n) {
    return Status::InvalidArgument("serialized state has wrong size");
  }
  for (size_t e = 0; e < n; ++e) XAt(slot, e) = payload[e];
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) PAt(slot, r, c) = payload[n + r * n + c];
  }
  SymmetrizeSlotCov(slot);
  return Status::Ok();
}

Status FilterPool::OverwriteStateOf(int32_t slot,
                                    const std::vector<double>& payload) {
  assert(IsActive(slot));
  if (payload.size() != dim_) {
    return Status::InvalidArgument("state payload has wrong size");
  }
  for (size_t e = 0; e < dim_; ++e) XAt(slot, e) = payload[e];
  // The per-object path round-trips the unchanged P through
  // DeserializeState, whose final Symmetrize we replicate for exact
  // behavioral equivalence.
  SymmetrizeSlotCov(slot);
  return Status::Ok();
}

// ------------------------------------------------------------- FilterPoolSet

FilterPool* FilterPoolSet::PoolFor(const StateSpaceModel& model,
                                   KalmanFilter::UpdateForm form) {
  // Linear scan: a deployment has a handful of distinct models, not
  // thousands, and PoolFor runs only at source registration.
  for (auto& pool : pools_) {
    if (pool->Matches(model, form)) return pool.get();
  }
  pools_.push_back(std::make_unique<FilterPool>(model, form));
  pools_.back()->set_simd(simd_);
  return pools_.back().get();
}

size_t FilterPoolSet::PredictAll() {
  size_t advanced = 0;
  for (auto& pool : pools_) advanced += pool->PredictAll();
  return advanced;
}

size_t FilterPoolSet::num_active() const {
  size_t total = 0;
  for (const auto& pool : pools_) total += pool->num_active();
  return total;
}

void FilterPoolSet::set_simd(bool on) {
  simd_ = on;
  for (auto& pool : pools_) pool->set_simd(on);
}

std::shared_ptr<const KalmanPredictor::Config> FilterPoolSet::InternConfig(
    const KalmanPredictor::Config& config) {
  assert(!config.adaptive.has_value());
  for (const auto& interned : configs_) {
    const KalmanPredictor::Config& c = *interned;
    if (c.sync_mode == config.sync_mode && c.init_var == config.init_var &&
        c.update_form == config.update_form &&
        c.outlier_gate_prob == config.outlier_gate_prob &&
        c.outlier_gate_limit == config.outlier_gate_limit &&
        c.model.f == config.model.f && c.model.q == config.model.q &&
        c.model.h == config.model.h && c.model.r == config.model.r) {
      return interned;
    }
  }
  configs_.push_back(std::make_shared<const KalmanPredictor::Config>(config));
  return configs_.back();
}

// ----------------------------------------------------- PooledKalmanPredictor

PooledKalmanPredictor::PooledKalmanPredictor(KalmanPredictor::Config config,
                                             FilterPoolSet* pools)
    : PooledKalmanPredictor(
          (assert(pools != nullptr), pools->InternConfig(config)), pools) {}

PooledKalmanPredictor::PooledKalmanPredictor(
    std::shared_ptr<const KalmanPredictor::Config> config,
    FilterPoolSet* pools)
    : config_(std::move(config)), pools_(pools) {
  assert(pools_ != nullptr);
  assert(config_->model.Validate().ok());
  // Adaptive noise estimation mutates the per-source model and cannot
  // share a pool; MakePooledPredictor filters such configs out.
  assert(!config_->adaptive.has_value());
  if (config_->outlier_gate_prob > 0.0 && config_->outlier_gate_prob < 1.0) {
    gate_threshold_ = ChiSquaredQuantile(config_->outlier_gate_prob,
                                         config_->model.obs_dim());
  }
}

PooledKalmanPredictor::~PooledKalmanPredictor() { ReleaseSlots(); }

void PooledKalmanPredictor::ReleaseSlots() {
  if (pool_ == nullptr) return;
  if (shadow_slot_ != FilterPool::kNoSlot) pool_->Release(shadow_slot_);
  if (private_slot_ != FilterPool::kNoSlot) pool_->Release(private_slot_);
  shadow_slot_ = FilterPool::kNoSlot;
  private_slot_ = FilterPool::kNoSlot;
}

void PooledKalmanPredictor::Init(const Reading& first) {
  assert(first.value.size() == config_->model.obs_dim());
  if (pool_ == nullptr) {
    pool_ = pools_->PoolFor(config_->model, config_->update_form);
  }
  // Same lift as KalmanPredictor::Init: H^T z places observed values in
  // their state slots, derivatives start at zero.
  size_t n = config_->model.state_dim();
  Vector x0 = config_->model.h.Transposed() * first.value;
  Matrix p0 = Matrix::ScalarDiagonal(n, config_->init_var);
  if (shadow_slot_ == FilterPool::kNoSlot) {
    shadow_slot_ = pool_->Acquire(/*owner_id=*/-1);
  }
  pool_->ResetSlot(shadow_slot_, x0, p0);
  if (config_->sync_mode != KalmanPredictor::SyncMode::kMeasurement) {
    // The private slot is materialized lazily (EnsurePrivateSlot): a
    // server replica clone never observes locally, so its private filter
    // would only waste a slot — and a batched time update per tick.
    if (private_slot_ != FilterPool::kNoSlot) {
      pool_->ResetSlot(private_slot_, x0, p0);
      private_pending_ = false;
    } else {
      private_pending_ = true;
      init_value_ = first.value;
    }
  } else {
    if (private_slot_ != FilterPool::kNoSlot) {
      pool_->Release(private_slot_);
      private_slot_ = FilterPool::kNoSlot;
    }
    private_pending_ = false;
  }
  shadow_ticks_ = 0;
  private_ticks_ = 0;
  consecutive_rejects_ = 0;
  outliers_rejected_ = 0;
  last_nis_ = -1.0;
  last_observed_ = first;
}

void PooledKalmanPredictor::EnsurePrivateSlot() {
  if (!private_pending_) return;
  size_t n = config_->model.state_dim();
  Vector x0 = config_->model.h.Transposed() * init_value_;
  Matrix p0 = Matrix::ScalarDiagonal(n, config_->init_var);
  private_slot_ = pool_->Acquire(/*owner_id=*/-1);
  pool_->ResetSlot(private_slot_, x0, p0);
  private_pending_ = false;
}

void PooledKalmanPredictor::Tick() {
  assert(shadow_slot_ != FilterPool::kNoSlot);
  ++shadow_ticks_;
  // A no-op when the shard's batched PredictAll already advanced the
  // slot this tick; does the time update itself in standalone use.
  pool_->PredictSlotUpTo(shadow_slot_, shadow_ticks_);
}

void PooledKalmanPredictor::ObserveLocal(const Reading& measured) {
  last_observed_ = measured;
  if (config_->sync_mode == KalmanPredictor::SyncMode::kMeasurement) return;
  EnsurePrivateSlot();
  ++private_ticks_;
  pool_->PredictSlotUpTo(private_slot_, private_ticks_);

  if (gate_threshold_ > 0.0) {
    // Identical control flow to KalmanPredictor's innovation gate,
    // including the conclusive-gate-only reset of the rejection run.
    double nis = pool_->GateSlot(private_slot_, measured.value);
    if (nis >= 0.0) {
      last_nis_ = nis;  // A rejected reading is still a consistency sample.
      if (nis > gate_threshold_) {
        if (consecutive_rejects_ + 1 < config_->outlier_gate_limit) {
          ++consecutive_rejects_;
          ++outliers_rejected_;
          if (metrics_.outliers_rejected) metrics_.outliers_rejected->Inc();
          return;  // Predict-only this tick.
        }
        if (metrics_.forced_accepts) metrics_.forced_accepts->Inc();
      }
    }
    consecutive_rejects_ = 0;
  }

  Status s = pool_->UpdateSlot(private_slot_, measured.value);
  assert(s.ok());
  (void)s;
  last_nis_ = pool_->LastNisOf(private_slot_);
}

Vector PooledKalmanPredictor::Target() const {
  if (config_->sync_mode != KalmanPredictor::SyncMode::kMeasurement &&
      (private_slot_ != FilterPool::kNoSlot || private_pending_)) {
    // Materializing the pending slot is logically const: the returned
    // value is exactly what the per-object path computes from x0.
    auto* self = const_cast<PooledKalmanPredictor*>(this);
    self->EnsurePrivateSlot();
    return pool_->PredictObservationOf(private_slot_);
  }
  return last_observed_.value;
}

Vector PooledKalmanPredictor::Predict() const {
  assert(shadow_slot_ != FilterPool::kNoSlot);
  return pool_->PredictObservationOf(shadow_slot_);
}

std::vector<double> PooledKalmanPredictor::EncodeCorrection(
    const Reading& measured) const {
  switch (config_->sync_mode) {
    case KalmanPredictor::SyncMode::kMeasurement:
      return measured.value.data();
    case KalmanPredictor::SyncMode::kState:
      const_cast<PooledKalmanPredictor*>(this)->EnsurePrivateSlot();
      return pool_->StateOf(private_slot_).data();
    case KalmanPredictor::SyncMode::kStateAndCov:
      const_cast<PooledKalmanPredictor*>(this)->EnsurePrivateSlot();
      return pool_->SerializeSlot(private_slot_);
  }
  return {};
}

Status PooledKalmanPredictor::ApplyCorrection(
    int64_t /*seq*/, double /*time*/, const std::vector<double>& payload) {
  if (shadow_slot_ == FilterPool::kNoSlot) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  switch (config_->sync_mode) {
    case KalmanPredictor::SyncMode::kMeasurement: {
      if (payload.size() != config_->model.obs_dim()) {
        return Status::InvalidArgument("correction payload has wrong size");
      }
      z_scratch_.ResizeUninit(payload.size());
      for (size_t i = 0; i < payload.size(); ++i) z_scratch_[i] = payload[i];
      return pool_->UpdateSlot(shadow_slot_, z_scratch_);
    }
    case KalmanPredictor::SyncMode::kState:
      return pool_->OverwriteStateOf(shadow_slot_, payload);
    case KalmanPredictor::SyncMode::kStateAndCov:
      return pool_->DeserializeSlot(shadow_slot_, payload);
  }
  return Status::Internal("unreachable");
}

std::vector<double> PooledKalmanPredictor::EncodeFullState() const {
  assert(shadow_slot_ != FilterPool::kNoSlot);
  return pool_->SerializeSlot(shadow_slot_);
}

Status PooledKalmanPredictor::ApplyFullState(
    const std::vector<double>& payload) {
  if (shadow_slot_ == FilterPool::kNoSlot) {
    return Status::FailedPrecondition("predictor not initialized");
  }
  if (metrics_.filter_resets) metrics_.filter_resets->Inc();
  return pool_->DeserializeSlot(shadow_slot_, payload);
}

void PooledKalmanPredictor::BindMetrics(obs::MetricRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics();
    return;
  }
  metrics_.outliers_rejected =
      registry->GetCounter("kc.kalman.outliers_rejected");
  metrics_.forced_accepts =
      registry->GetCounter("kc.kalman.gate_forced_accepts");
  metrics_.filter_resets = registry->GetCounter("kc.kalman.filter_resets");
}

std::unique_ptr<Predictor> PooledKalmanPredictor::Clone() const {
  // Clones share the interned config (no per-clone model copies).
  return std::make_unique<PooledKalmanPredictor>(config_, pools_);
}

std::string PooledKalmanPredictor::name() const {
  switch (config_->sync_mode) {
    case KalmanPredictor::SyncMode::kState:
      return "kalman";
    case KalmanPredictor::SyncMode::kStateAndCov:
      return "kalman_cov";
    case KalmanPredictor::SyncMode::kMeasurement:
      return "kalman_meas";
  }
  return "kalman";
}

std::unique_ptr<Predictor> MakePooledPredictor(const Predictor& prototype,
                                               FilterPoolSet* pools) {
  const auto* kp = dynamic_cast<const KalmanPredictor*>(&prototype);
  if (kp == nullptr) return nullptr;
  const KalmanPredictor::Config& config = kp->config();
  if (config.adaptive.has_value()) return nullptr;
  if (config.model.state_dim() > Vector::kInlineCap ||
      config.model.state_dim() * config.model.state_dim() >
          Matrix::kInlineCap ||
      config.model.obs_dim() > Vector::kInlineCap) {
    return nullptr;  // Outside the inline-slab envelope.
  }
  return std::make_unique<PooledKalmanPredictor>(pools->InternConfig(config),
                                                 pools);
}

}  // namespace kc
