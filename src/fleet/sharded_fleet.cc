#include "fleet/sharded_fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"
#include "obs/trace.h"

namespace kc {

namespace {

size_t ResolveShards(const ShardedFleet::Config& config) {
  if (config.num_shards > 0) return config.num_shards;
  return std::max<size_t>(std::max<size_t>(config.threads, 1), 8);
}

}  // namespace

ShardedFleet::ShardedFleet() : ShardedFleet(Config()) {}

ShardedFleet::ShardedFleet(Config config)
    : config_(config),
      server_(ResolveShards(config)),
      shards_(ResolveShards(config)),
      pool_(std::max<size_t>(config.threads, 1)) {
  // Control downlink: route SET_BOUND pushes to the addressed source's
  // control channel. Driver thread only (PushBound between Steps).
  server_.SetControlSink([this](const Message& msg) -> Status {
    auto idx = static_cast<size_t>(msg.source_id);
    if (idx >= by_id_.size()) {
      return Status::NotFound("control message for unknown source");
    }
    return by_id_[idx]->control_channel->Send(msg);
  });
  if (config_.recovery.enabled) server_.SetRecovery(config_.recovery);
  if (!config_.simd) server_.SetSimdEnabled(false);
  if (config_.sweep_threads != 0 &&
      config_.sweep_threads != std::max<size_t>(config_.threads, 1)) {
    sweep_pool_ = std::make_unique<ThreadPool>(config_.sweep_threads);
  }
}

int32_t ShardedFleet::AddSource(std::unique_ptr<StreamGenerator> generator,
                                std::unique_ptr<Predictor> predictor,
                                double delta) {
  auto id = static_cast<int32_t>(by_id_.size());
  size_t shard_index = server_.ShardOf(id);
  auto slot = std::make_unique<SourceSlot>();
  slot->id = id;

  // Poolable Kalman sources swap onto the shard's SoA filter pool; the
  // replica clone below inherits the same pool set, so both ends of the
  // protocol live in the owning shard's slabs. Bit-identical to the
  // per-object predictor, so the substitution is invisible to the
  // protocol, reports, and determinism contract.
  if (config_.pooling) {
    if (auto pooled =
            MakePooledPredictor(*predictor, server_.shard_pools(shard_index))) {
      predictor = std::move(pooled);
    }
  }

  // Identical seed derivation to the single-threaded Fleet: pure function
  // of (fleet seed, id), never of shard or thread count.
  slot->generator = std::move(generator);
  slot->generator->Reset(SourceGeneratorSeed(config_.seed, id));

  Channel::Config channel_config = config_.channel;
  channel_config.seed = SourceUplinkSeed(config_.seed, id);
  slot->channel = config_.uplink_factory
                      ? config_.uplink_factory(id, channel_config)
                      : std::make_unique<Channel>(channel_config);
  // The uplink delivers straight into the owning shard's StreamServer, so
  // a shard worker's sends never cross shard boundaries.
  StreamServer* shard_server = &server_.shard(shard_index);
  const bool recovering = config_.recovery.enabled;
  slot->channel->SetReceiver([shard_server, recovering](const Message& msg) {
    Status s = shard_server->OnMessage(msg);
    // With recovery on, a CORRECTION outliving its lost INIT is rejected
    // here and healed later by re-INIT — not a programming error.
    assert(s.ok() || recovering);
    (void)s;
  });

  Status reg = server_.RegisterSource(id, predictor->Clone());
  assert(reg.ok());
  (void)reg;

  AgentConfig agent_config = config_.agent_base;
  agent_config.delta = delta;
  slot->agent = std::make_unique<SourceAgent>(id, std::move(predictor),
                                              agent_config,
                                              slot->channel.get());

  Channel::Config control_config = config_.control_channel;
  control_config.seed = SourceControlSeed(config_.seed, id);
  slot->control_channel = config_.control_factory
                              ? config_.control_factory(id, control_config)
                              : std::make_unique<Channel>(control_config);
  SourceAgent* agent = slot->agent.get();
  slot->control_channel->SetReceiver([agent](const Message& msg) {
    Status s = agent->OnControl(msg);
    assert(s.ok());
    (void)s;
  });

  if (server_.metrics_enabled()) BindSlotMetrics(slot.get(), shard_index);
  BindSlotObservability(slot.get(), shard_index);
  BindSlotAudit(slot.get(), shard_index);

  by_id_.push_back(slot.get());
  shards_[shard_index].sources.push_back(std::move(slot));
  return id;
}

void ShardedFleet::BindSlotMetrics(SourceSlot* slot, size_t shard_index) {
  obs::MetricRegistry* arena = server_.shard_metrics(shard_index);
  slot->channel->BindMetrics(arena);
  slot->control_channel->BindMetrics(arena);
  slot->agent->BindMetrics(arena);
}

void ShardedFleet::BindSlotObservability(SourceSlot* slot,
                                         size_t shard_index) {
  obs::FlightRecorder* recorder = server_.shard_recorder(shard_index);
  obs::HealthMonitor* health = server_.shard_health(shard_index);
  if (recorder == nullptr && health == nullptr) return;
  // Agent and replica share the same per-source ring and watchdog entry:
  // the source lives on exactly one shard, and that shard's worker is the
  // single writer for both ends within a tick.
  slot->agent->BindObservability(
      recorder == nullptr ? nullptr : recorder->ForSource(slot->id),
      health == nullptr
          ? nullptr
          : health->ForSource(slot->id, slot->agent->predictor().dims()));
}

void ShardedFleet::EnableFlightRecorder(size_t capacity_per_source) {
  if (server_.flight_recorder_enabled()) return;
  server_.EnableFlightRecorder(capacity_per_source);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (auto& slot : shards_[s].sources) BindSlotObservability(slot.get(), s);
  }
}

void ShardedFleet::EnableHealth(const obs::HealthConfig& config) {
  if (server_.health_enabled()) return;
  server_.EnableHealth(config);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (auto& slot : shards_[s].sources) BindSlotObservability(slot.get(), s);
    // Audit enabled first: its per-source entries resolved against an
    // absent watchdog, so re-bind now that the entries above exist.
    if (server_.audit_enabled()) {
      server_.shard_audit(s)->BindHealth(server_.shard_health(s));
    }
  }
}

void ShardedFleet::EnableAudit(const obs::AuditConfig& config) {
  if (server_.audit_enabled()) return;
  server_.EnableAudit(config);
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (auto& slot : shards_[s].sources) BindSlotAudit(slot.get(), s);
  }
}

void ShardedFleet::BindSlotAudit(SourceSlot* slot, size_t shard_index) {
  obs::PrecisionAuditor* auditor = server_.shard_audit(shard_index);
  if (auditor != nullptr) slot->audit = auditor->ForSource(slot->id);
}

void ShardedFleet::EnableTimeseries(int64_t every_n_ticks,
                                    obs::TimeSeriesConfig config) {
  if (timeseries_ != nullptr) return;
  EnableMetrics();
  timeseries_ = std::make_unique<obs::TimeSeriesStore>(config);
  timeseries_->BindMetrics(server_.driver_metrics());
  timeseries_every_ = std::max<int64_t>(every_n_ticks, 1);
  if (http_ != nullptr) http_->SetTimeseriesSource(timeseries_.get());
}

Status ShardedFleet::EnableHttpTelemetry(int port,
                                         int64_t publish_every_n_ticks) {
  if (http_ != nullptr) return Status::Ok();
  EnableMetrics();
  obs::TelemetryHttpServer::Config http_config;
  http_config.port = port;
  http_ = std::make_unique<obs::TelemetryHttpServer>(http_config);
  Status s = http_->Start();
  if (!s.ok()) {
    http_.reset();
    return s;
  }
  publish_every_ = std::max<int64_t>(publish_every_n_ticks, 1);
  // /timeseries renders from the live store per request (with ?prefix=
  // support); the store is self-locking and outlives the server (member
  // order: timeseries_ before http_, so http_ is destroyed first).
  if (timeseries_ != nullptr) http_->SetTimeseriesSource(timeseries_.get());
  // Scrapes before the first publish see the startup state, not 404s.
  PublishTelemetry();
  return Status::Ok();
}

void ShardedFleet::PublishTelemetry() {
  if (http_ == nullptr) return;
  obs::MetricRegistry merged;
  server_.MergeMetricsInto(&merged);
  if (telemetry_merger_ != nullptr) {
    // One scrape covers both "processes": the merger's namespaced remote
    // rows join the local ones, exactly as on a split deployment's
    // server.
    http_->PublishMetrics(telemetry_merger_->MergedRows(merged.Rows()));
  } else {
    http_->PublishMetrics(merged.Rows());
  }
  std::string body = StrFormat("ticks=%lld sources=%lld\n",
                               static_cast<long long>(ticks_),
                               static_cast<long long>(by_id_.size()));
  bool healthy = true;
  if (server_.audit_enabled()) {
    body += server_.AuditSummaryLine();
    healthy = server_.AuditExhaustedSources() == 0;
    // The structured doc enables ?prefix=source.<id> / ?prefix=query.
    // scoped /audit scrapes.
    http_->PublishAuditDoc(server_.AuditReportDoc());
  }
  http_->PublishHealthz(healthy, std::move(body));
}

void ShardedFleet::EnableTelemetryPlane(int64_t every_n_ticks) {
  if (telemetry_merger_ != nullptr) return;
  EnableMetrics();
  telemetry_merger_ =
      std::make_unique<obs::RemoteTelemetryMerger>(obs::RemoteTelemetryMerger::Options());
  telemetry_merger_->BindMetrics(server_.driver_metrics());
  telemetry_snapshots_ =
      server_.driver_metrics()->GetCounter("kc.telemetry.snapshots");
  telemetry_snapshot_bytes_ = server_.driver_metrics()->GetCounter(
      "kc.telemetry.snapshot_bytes", /*wall_clock=*/true);
  telemetry_every_ = std::max<int64_t>(every_n_ticks, 1);
}

void ShardedFleet::EnableMetrics() {
  if (server_.metrics_enabled()) return;
  server_.EnableMetrics();
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (auto& slot : shards_[s].sources) BindSlotMetrics(slot.get(), s);
  }
  step_latency_us_ = server_.driver_metrics()->GetHistogram(
      "kc.fleet.step_latency_us", obs::Buckets::Exponential(1.0, 2.0, 16),
      /*wall_clock=*/true);
}

void ShardedFleet::EnablePeriodicMetricsReport(int64_t every_n_ticks,
                                               ReportSink sink,
                                               obs::ExportOptions options) {
  report_every_ = sink ? every_n_ticks : 0;
  report_sink_ = std::move(sink);
  report_options_ = options;
}

void ShardedFleet::StepShard(size_t index) {
  KC_TRACE_SCOPE("fleet.step_shard");
  server_.TickShard(index, /*run_pool_sweep=*/false);
  Shard& shard = shards_[index];
  for (auto& slot : shard.sources) {
    slot->channel->AdvanceTick();
    // Control downlink advances with the uplink so delayed SET_BOUND /
    // RESYNC_REQUEST traffic reaches the agent before this tick's Offer.
    slot->control_channel->AdvanceTick();
    slot->last_sample = slot->generator->Next();
    Status s = slot->agent->Offer(slot->last_sample.measured);
    if (!s.ok() && shard.status.ok()) shard.status = s;
  }
  // Audit pass: after Offer, a zero-latency channel has delivered this
  // tick's traffic, so replica and agent are in lockstep and the paper's
  // guarantee must hold exactly. The shard's tick is the audit clock
  // (identical across shards), so every shard samples the same ticks.
  obs::PrecisionAuditor* auditor = server_.shard_audit(index);
  if (auditor != nullptr) {
    int64_t tick = server_.shard(index).ticks();
    if (auditor->ShouldSample(tick)) AuditShard(index, tick);
  }
}

void ShardedFleet::AuditShard(size_t index, int64_t tick) {
  const StreamServer& shard_server = server_.shard(index);
  for (auto& slot : shards_[index].sources) {
    const ServerReplica* replica = shard_server.replica(slot->id);
    if (replica == nullptr || !replica->initialized() ||
        !slot->agent->initialized()) {
      continue;
    }
    // L-inf distance between the replica's cached answer and the contract
    // target the agent is suppressing against — the exact quantity the
    // protocol bounds.
    Vector predicted = replica->Value();
    Vector target = slot->agent->ContractTarget();
    double err = 0.0;
    size_t dims = std::min(predicted.size(), target.size());
    for (size_t d = 0; d < dims; ++d) {
      err = std::max(err, std::abs(predicted[d] - target[d]));
    }
    slot->audit->Sample(tick, err, replica->bound(), replica->TicksSinceHeard(),
                        replica->desynced());
  }
}

Status ShardedFleet::Step() {
  KC_TRACE_SCOPE("fleet.step");
  int64_t t0 = step_latency_us_ != nullptr ? obs::TraceNowNs() : 0;
  // Phase 1: the batched filter sweep, every shard's pools flattened into
  // one block list and chunked across the sweep driver — one big shard no
  // longer serializes its million slots on a single worker. Phase 2 (the
  // shard fan-out below) then runs with run_pool_sweep=false. The split
  // is state-identical to sweeping inside TickShard: a shard's tick only
  // reads and writes its own pools, and slots are mutually independent.
  server_.SweepPools(SweepDriver());
  pool_.ParallelFor(shards_.size(), [this](size_t s) { StepShard(s); });
  // Barrier passed: every shard has ticked once and drained its messages;
  // the merged view is consistent.
  ++ticks_;
  if (step_latency_us_ != nullptr) {
    step_latency_us_->Record(static_cast<double>(obs::TraceNowNs() - t0) *
                             1e-3);
  }
  for (const Shard& shard : shards_) {
    if (!shard.status.ok()) return shard.status;
  }
  if (report_every_ > 0 && ticks_ % report_every_ == 0) {
    // Merge strictly after the barrier, in shard order: the report is a
    // pure function of the simulated history, not of thread scheduling
    // (wall-clock metrics are excluded unless the options opt in).
    obs::MetricRegistry merged;
    server_.MergeMetricsInto(&merged);
    report_sink_(obs::ExportMetrics(merged, report_options_));
  }
  if (telemetry_every_ > 0 && ticks_ % telemetry_every_ == 0) {
    // Self-merge round trip: encode the merged registry through the
    // snapshot codec and absorb it, the exact path a split deployment's
    // server runs on its client's snapshots. Rows already under the
    // merger's namespace are excluded — re-snapshotting them would grow
    // "kc.remote.client.remote.client.*" names without bound.
    obs::MetricRegistry merged;
    server_.MergeMetricsInto(&merged);
    obs::TelemetrySnapshot snapshot;
    snapshot.tick = ticks_;
    for (obs::MetricRow& row : merged.Rows()) {
      if (row.name.compare(0, 10, "kc.remote.") == 0) continue;
      if (row.name.compare(0, 13, "kc.telemetry.") == 0) continue;
      snapshot.rows.push_back(std::move(row));
    }
    std::vector<uint8_t> encoded;
    obs::EncodeSnapshot(snapshot, &encoded);
    telemetry_snapshots_->Inc();
    telemetry_snapshot_bytes_->Inc(static_cast<int64_t>(encoded.size()));
    obs::TelemetrySnapshot decoded;
    Status s = obs::DecodeSnapshot(encoded.data(), encoded.size(), &decoded);
    assert(s.ok());
    (void)s;
    telemetry_merger_->Absorb(decoded);
  }
  if (timeseries_every_ > 0 && ticks_ % timeseries_every_ == 0) {
    // Same post-barrier merge discipline: each capture snapshots the
    // merged registry, so the rings are deterministic across threads.
    obs::MetricRegistry merged;
    server_.MergeMetricsInto(&merged);
    timeseries_->Capture(merged, ticks_);
  }
  if (publish_every_ > 0 && ticks_ % publish_every_ == 0) PublishTelemetry();
  return Status::Ok();
}

Status ShardedFleet::Run(size_t ticks) {
  for (size_t i = 0; i < ticks; ++i) {
    KC_RETURN_IF_ERROR(Step());
  }
  return Status::Ok();
}

int64_t ShardedFleet::MessagesOf(int32_t id) const {
  const AgentStats& s = by_id_[id]->agent->stats();
  return s.corrections + s.full_syncs + 1;  // +1 for INIT.
}

int64_t ShardedFleet::TotalMessages() const {
  int64_t total = 0;
  for (const SourceSlot* slot : by_id_) {
    total += slot->channel->stats().messages_sent;
  }
  return total;
}

int64_t ShardedFleet::TotalBytes() const {
  int64_t total = 0;
  for (const SourceSlot* slot : by_id_) {
    total += slot->channel->stats().bytes_sent;
  }
  return total;
}

int64_t ShardedFleet::TotalControlMessages() const {
  int64_t total = 0;
  for (const SourceSlot* slot : by_id_) {
    total += slot->control_channel->stats().messages_sent;
  }
  return total;
}

NetworkStats ShardedFleet::TotalNetworkStats() const {
  NetworkStats merged;
  // Merge shard by shard, id order within each shard: deterministic, and
  // int64 sums are order-independent anyway.
  for (const Shard& shard : shards_) {
    for (const auto& slot : shard.sources) {
      merged.Merge(slot->channel->stats());
    }
  }
  return merged;
}

}  // namespace kc
