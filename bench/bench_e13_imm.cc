// E13 — Table "mode-switching estimators" (extension): the IMM predictor
// against the adaptive single filter and the frozen tunes on a stream that
// flips between behavioural modes faster than windowed adaptation can
// follow. The IMM carries both hypotheses at all times and re-weights
// them within a few ticks of each flip.

#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "common/stats.h"
#include "streams/generators.h"
#include "suppression/imm_policy.h"
#include "suppression/policies.h"

namespace {

struct Row {
  long long messages;
  double rmse;
  long long violations;
};

Row RunFlipper(const kc::Predictor& proto, int64_t flip_every) {
  kc::RegimeSwitchingGenerator::Config regimes;
  regimes.regimes = {{flip_every, 0.1, 0.0}, {flip_every, 1.5, 0.0}};
  kc::RegimeSwitchingGenerator stream(regimes);
  kc::LinkConfig config;
  config.ticks = 12000;
  config.delta = 0.75;
  config.seed = 61;
  kc::LinkReport report = kc::RunLink(stream, proto, config);
  return {report.messages, report.err_vs_truth.rms(),
          report.contract_violations};
}

std::unique_ptr<kc::Predictor> FixedKalman(double q, bool adaptive) {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(q, 0.04);
  if (adaptive) config.adaptive = kc::AdaptiveConfig{};
  return std::make_unique<kc::KalmanPredictor>(std::move(config));
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E13 | Mode-switching streams: IMM vs adaptive vs frozen (extension)",
      "volatility flips 0.1 <-> 1.5 every N ticks; delta=0.75; 12000 "
      "readings; rmse vs truth");
  std::printf("%12s | %-22s %10s %10s %12s\n", "flip every", "estimator",
              "messages", "rmse", "violations");

  for (int64_t flip : {2000, 500, 100}) {
    struct Variant {
      const char* name;
      std::unique_ptr<kc::Predictor> proto;
    };
    std::vector<Variant> variants;
    variants.push_back({"imm (2 modes)",
                        kc::MakeTwoModeImmPredictor(0.01, 2.25, 0.04)});
    variants.push_back({"adaptive_kf", FixedKalman(0.01, true)});
    variants.push_back({"frozen_kf (loud tune)", FixedKalman(2.25, false)});
    variants.push_back({"value_cache", kc::bench::MakePolicy("value_cache")});
    for (const Variant& v : variants) {
      Row row = RunFlipper(*v.proto, flip);
      std::printf("%12lld | %-22s %10lld %10.3f %12lld\n",
                  static_cast<long long>(flip), v.name, row.messages, row.rmse,
                  row.violations);
    }
  }

  std::printf(
      "\nExpected shape: at slow flips every estimator has time to settle "
      "and the\ndifferences are modest. As flips accelerate, the windowed "
      "adaptive filter is\nperpetually mid-relearn while the IMM re-weights "
      "its standing hypotheses within\na few ticks: it keeps the loud-tune's "
      "accuracy at fewer messages, because it\nalso exploits every quiet "
      "interval. All variants keep zero contract violations\n(the protocol "
      "guarantee is independent of estimator quality).\n");
  return 0;
}
