// E12 — Table "moving-object model ladder" (extension): the paper's
// moving-object workload across the model hierarchy — static caching,
// linear dead reckoning, linear CV Kalman, and the nonlinear
// coordinated-turn EKF — at several precision bounds.

#include <cstdio>
#include <memory>

#include "common.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/ekf_policy.h"
#include "suppression/policies.h"

namespace {

std::unique_ptr<kc::StreamGenerator> MakeVehicle() {
  kc::Vehicle2DGenerator::Config config;
  config.speed_mean = 10.0;
  config.turn_change_prob = 0.002;  // Long sustained arcs: turns matter.
  config.turn_rate_sigma = 0.002;
  config.max_turn_rate = 0.06;
  kc::NoiseConfig gps;
  gps.gaussian_sigma = 2.0;
  return std::make_unique<kc::NoisyStream>(
      std::make_unique<kc::Vehicle2DGenerator>(config), gps);
}

kc::LinkReport RunVehicle(const kc::Predictor& proto, double delta) {
  auto stream = MakeVehicle();
  kc::LinkConfig config;
  config.ticks = 10000;
  config.delta = delta;
  config.seed = 59;
  return kc::RunLink(*stream, proto, config);
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E12 | Moving objects across the model ladder (extension)",
      "arc-heavy 2-D vehicle, GPS sigma=2m, 10000 fixes; cells are "
      "messages shipped");
  std::printf("%10s %14s %10s %12s %14s\n", "delta (m)", "value_cache",
              "linear", "kalman_cv", "ekf_coordturn");

  kc::ValueCachePredictor cache(2);
  kc::LinearPredictor linear(2);
  kc::KalmanPredictor::Config cv;
  cv.model = kc::MakeConstantVelocity2DModel(1.0, 0.05, 4.0);
  kc::KalmanPredictor cv_kf(cv);
  auto ekf = kc::MakeCoordinatedTurnPredictor(1.0, 4.0);

  for (double delta : {5.0, 10.0, 25.0, 50.0}) {
    long long c = RunVehicle(cache, delta).messages;
    long long l = RunVehicle(linear, delta).messages;
    long long k = RunVehicle(cv_kf, delta).messages;
    long long e = RunVehicle(*ekf, delta).messages;
    std::printf("%10.0f %14lld %10lld %12lld %14lld\n", delta, c, l, k, e);
  }

  std::printf(
      "\nExpected shape: each rung of the ladder encodes more of the true "
      "dynamics and\nsuppresses more — value caching < dead reckoning < "
      "linear CV Kalman <\ncoordinated-turn EKF, with the EKF's edge "
      "largest at tight bounds where the\nCV model's straight-line "
      "extrapolation exits the corridor on every arc.\n");
  return 0;
}
