// E14 — Table "trigger quality under bounded uncertainty" (extension):
// how trustworthy the server's three-valued threshold answers are as the
// precision bound grows. A definite YES/NO must (almost) never be wrong —
// the uncertainty shows up as a widening MAYBE band and is never silently
// converted into a confident falsehood. This substantiates the framing
// that approximate answers need quality guarantees, not just smallness.

#include <cmath>
#include <cstdio>
#include <memory>

#include "common.h"
#include "query/parser.h"
#include "server/server.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/agent.h"
#include "suppression/policies.h"

namespace {

struct TriggerQuality {
  long long yes = 0, maybe = 0, no = 0;
  long long wrong_definite = 0;  // YES while truly under / NO while over.
  long long messages = 0;
};

TriggerQuality RunTrigger(double delta) {
  using namespace kc;
  // A sinusoid oscillating through the threshold, with sensor noise.
  SinusoidGenerator::Config wave;
  wave.offset = 20.0;
  wave.amplitude = 6.0;
  wave.period = 400.0;
  NoiseConfig noise;
  noise.gaussian_sigma = 0.4;
  NoisyStream stream(std::make_unique<SinusoidGenerator>(wave), noise);
  stream.Reset(67);
  constexpr double kThreshold = 22.0;

  StreamServer server;
  (void)server.RegisterSource(0, MakeDefaultKalmanPredictor(0.05, 0.16));
  Channel channel;
  channel.SetReceiver([&server](const Message& m) {
    (void)server.OnMessage(m);
  });
  AgentConfig agent_config;
  agent_config.delta = delta;
  SourceAgent agent(0, MakeDefaultKalmanPredictor(0.05, 0.16), agent_config,
                    &channel);
  auto spec = ParseQuery("SELECT VALUE(s0) WHEN > 22");
  (void)server.AddQuery("hot", *spec);

  TriggerQuality q;
  for (int t = 0; t < 20000; ++t) {
    Sample s = stream.Next();
    server.Tick();
    if (!agent.Offer(s.measured).ok()) break;
    auto result = server.Evaluate("hot");
    if (!result.ok()) continue;
    bool truly_over = s.truth.scalar() > kThreshold;
    switch (*result->trigger) {
      case TriggerState::kYes:
        ++q.yes;
        if (!truly_over) ++q.wrong_definite;
        break;
      case TriggerState::kMaybe:
        ++q.maybe;
        break;
      case TriggerState::kNo:
        ++q.no;
        if (truly_over) ++q.wrong_definite;
        break;
    }
  }
  q.messages = channel.stats().messages_sent;
  return q;
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E14 | Trigger quality under bounded uncertainty (extension)",
      "sinusoid through threshold 22 (amplitude 6, noise 0.4); 20000 "
      "readings; kalman policy");
  std::printf("%8s %10s %10s %10s %10s %16s %12s\n", "delta", "YES", "MAYBE",
              "NO", "messages", "wrong definite", "wrong rate");
  for (double delta : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    TriggerQuality q = RunTrigger(delta);
    long long total = q.yes + q.maybe + q.no;
    std::printf("%8.2f %10lld %10lld %10lld %10lld %16lld %11.3f%%\n", delta,
                q.yes, q.maybe, q.no, q.messages, q.wrong_definite,
                100.0 * static_cast<double>(q.wrong_definite) /
                    static_cast<double>(total));
  }
  std::printf(
      "\nExpected shape: the MAYBE band widens with delta (honest "
      "uncertainty), the\nmessage count falls, and wrong-definite answers "
      "stay rare at every delta —\nthe residual few live in the gap between "
      "the noisy truth and the filtered\ncontract target near the "
      "threshold. Precision is traded for bandwidth without\never trading "
      "away the guarantee's honesty.\n");
  return 0;
}
