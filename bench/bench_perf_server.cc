// P3 — server-path microbenchmarks: message application at a replica,
// full fleet ticks, aggregate query evaluation, and CQL parsing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "fleet/sharded_fleet.h"
#include "query/parser.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace {

void BM_ReplicaApplyCorrection(benchmark::State& state) {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(0.1, 0.25);
  kc::ServerReplica replica(0, std::make_unique<kc::KalmanPredictor>(config));
  kc::Message init;
  init.source_id = 0;
  init.type = kc::MessageType::kInit;
  init.payload = {1.0, 0.0};
  (void)replica.OnMessage(init);

  kc::Message correction;
  correction.source_id = 0;
  correction.type = kc::MessageType::kCorrection;
  correction.payload = {1.0, 0.5};
  int64_t seq = 0;
  for (auto _ : state) {
    correction.seq = ++seq;
    correction.time = static_cast<double>(seq);
    replica.Tick();
    benchmark::DoNotOptimize(replica.OnMessage(correction).ok());
  }
}
BENCHMARK(BM_ReplicaApplyCorrection);

void BM_FleetStep(benchmark::State& state) {
  auto sources = static_cast<int>(state.range(0));
  kc::Fleet fleet;
  for (int i = 0; i < sources; ++i) {
    kc::RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.3;
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    kc::MakeDefaultKalmanPredictor(0.09, 0.01), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * sources);
}
BENCHMARK(BM_FleetStep)->Arg(10)->Arg(100)->Arg(1000);

// The sharded executor on the same workload: {sources, threads}. At
// threads=1 this measures the sharding overhead (it should be near
// BM_FleetStep); at threads=N it measures the parallel speedup. Answers
// are bit-identical across rows with the same source count.
void BM_ShardedFleetStep(benchmark::State& state) {
  auto sources = static_cast<int>(state.range(0));
  kc::ShardedFleet::Config config;
  config.threads = static_cast<size_t>(state.range(1));
  kc::ShardedFleet fleet(config);
  for (int i = 0; i < sources; ++i) {
    kc::RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.3;
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    kc::MakeDefaultKalmanPredictor(0.09, 0.01), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * sources);
}
BENCHMARK(BM_ShardedFleetStep)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 4});

// Telemetry-plane tax: the sharded fleet with the full distributed
// telemetry plane on — per-shard metric arenas, plus a snapshot
// encode/decode/self-merge loopback every `telemetry_every` ticks — vs
// the bare step. {sources, telemetry_every}; every=0 is the baseline.
// run_benches.sh pairs the rows into BENCH_perf.json's
// telemetry_overhead table, and check_bench_regress.sh diffs it. The
// amortized per-tick cost at the default cadence (32) is the number the
// docs quote; the every=1 row is the worst case (a snapshot per tick).
void BM_FleetStepTelemetry(benchmark::State& state) {
  const auto sources = static_cast<int>(state.range(0));
  const auto every = static_cast<int64_t>(state.range(1));
  kc::ShardedFleet::Config config;
  config.threads = 1;
  config.num_shards = 4;
  kc::ShardedFleet fleet(config);
  if (every > 0) fleet.EnableTelemetryPlane(every);
  for (int i = 0; i < sources; ++i) {
    kc::RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.3;
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    kc::MakeDefaultKalmanPredictor(0.09, 0.01), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * sources);
  state.counters["sources"] = static_cast<double>(sources);
  state.counters["telemetry_every"] = static_cast<double>(every);
}
BENCHMARK(BM_FleetStepTelemetry)
    ->Args({1000, 0})
    ->Args({1000, 32})
    ->Args({1000, 1});

// Fleet-scale tick throughput: {sources, pooled, threads, simd}. The
// pooled rows run the SoA FilterPool path (per-shard lane-interleaved x/P
// slabs swept by the vectorized batched kernels once per tick); pooled=0
// forces every source onto the per-object virtual Predictor path the
// pools replaced. The threads axis drives both the shard fan-out and the
// phase-1 pool sweep; the simd axis toggles the AVX2 lane kernels against
// their portable scalar twins. Answers are bit-identical across the
// entire matrix (tests/pool_test.cc, tests/batch_kernels_test.cc), so
// items_per_second — sources ticked per second — is the only thing that
// may differ. run_benches.sh folds these rows into BENCH_perf.json's
// fleet_tick_1m table. The per-object baseline stops at 100k sources:
// at ~44 KB per source it is memory-bound long before 1M.
void BM_FleetTick_1M(benchmark::State& state) {
  const auto sources = static_cast<int>(state.range(0));
  const bool pooled = state.range(1) != 0;
  const auto threads = static_cast<size_t>(state.range(2));
  const bool simd = state.range(3) != 0;
  kc::ShardedFleet::Config config;
  config.threads = threads;
  config.num_shards = 8;
  config.pooling = pooled;
  config.simd = simd;
  kc::ShardedFleet fleet(config);
  kc::KalmanPredictor::Config kf;  // Non-adaptive: eligible for pooling.
  kf.model = kc::MakeRandomWalkModel(0.1, 0.25);
  for (int i = 0; i < sources; ++i) {
    kc::RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.3;
    // Wide delta: almost every tick is suppressed, so the rows measure
    // the predict/gate hot loop rather than message serialization.
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    std::make_unique<kc::KalmanPredictor>(kf), 4.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * sources);
  state.counters["sources"] = static_cast<double>(sources);
  state.counters["pooled"] = pooled ? 1.0 : 0.0;
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["simd"] = simd ? 1.0 : 0.0;
}
void FleetTickMatrix(benchmark::internal::Benchmark* b) {
  b->Args({100000, 0, 1, 1});    // Per-object baseline.
  b->Args({100000, 1, 1, 1});    // Pooled, 1 thread, SIMD.
  b->Args({1000000, 1, 1, 1});   // The headline row.
  b->Args({1000000, 1, 1, 0});   // SIMD off: the scalar-lane cost.
  b->Args({1000000, 1, 4, 1});   // Multi-threaded sweep + shard fan-out.
  const auto hw = static_cast<int64_t>(std::thread::hardware_concurrency());
  if (hw > 1 && hw != 4) b->Args({1000000, 1, hw, 1});
}
BENCHMARK(BM_FleetTick_1M)
    ->Apply(FleetTickMatrix)
    ->Unit(benchmark::kMillisecond);

void BM_AggregateEvaluate(benchmark::State& state) {
  auto members = static_cast<int>(state.range(0));
  kc::Fleet fleet;
  for (int i = 0; i < members; ++i) {
    kc::RandomWalkGenerator::Config walk;
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    std::make_unique<kc::ValueCachePredictor>(), 1.0);
  }
  (void)fleet.Run(2);
  kc::QuerySpec spec;
  spec.kind = kc::AggregateKind::kAvg;
  for (int i = 0; i < members; ++i) spec.sources.push_back(i);
  (void)fleet.server().AddQuery("avg", spec);
  for (auto _ : state) {
    auto result = fleet.server().Evaluate("avg");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_AggregateEvaluate)->Arg(4)->Arg(64)->Arg(256);

// Deterministic loss-sweep smoke for the recovery protocol: one link,
// fixed seeds, a Gilbert-Elliott channel whose stationary bad-state
// fraction is the benchmark argument (in percent). The counters are the
// recovery-time-to-bound numbers run_benches.sh folds into
// BENCH_perf.json's loss_sweep_recovery table — identical on every run,
// so regressions in the protocol (slower healing, more quarantine time)
// show up as counter diffs, not timing noise.
void BM_LossSweepRecovery(benchmark::State& state) {
  const double bad = static_cast<double>(state.range(0)) / 100.0;
  kc::LinkConfig config;
  config.ticks = 2000;
  config.delta = 0.5;
  config.seed = 7;
  config.agent.heartbeat_every = 4;
  config.channel.seed = 8;
  if (bad > 0.0) {
    // enter/(enter+exit) == bad: the chain spends `bad` of its time in
    // the bursty state, where every send is lost.
    config.channel.faults.burst_exit_prob = 0.25;
    config.channel.faults.burst_enter_prob = 0.25 * bad / (1.0 - bad);
    config.channel.faults.burst_loss_prob = 1.0;
  }
  config.channel.faults.duplicate_prob = 0.05;
  config.recovery.enabled = true;
  config.recovery.suspect_after_silent_ticks = 10;

  kc::KalmanPredictor::Config kf;
  kf.model = kc::MakeRandomWalkModel(0.1, 0.25);
  kc::KalmanPredictor prototype(kf);
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.3;

  kc::LinkReport report;
  for (auto _ : state) {
    kc::RandomWalkGenerator generator(walk);
    report = kc::RunLink(generator, prototype, config);
    benchmark::DoNotOptimize(report.contract_violations);
  }
  state.counters["gaps"] = static_cast<double>(report.gaps);
  state.counters["resyncs_served"] = static_cast<double>(report.resyncs_served);
  state.counters["degraded_ticks"] =
      static_cast<double>(report.degraded_ticks);
  state.counters["recovery_ticks_per_resync"] =
      static_cast<double>(report.degraded_ticks) /
      static_cast<double>(std::max<int64_t>(report.resyncs_served, 1));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(config.ticks));
}
BENCHMARK(BM_LossSweepRecovery)->Arg(0)->Arg(5)->Arg(10)->Arg(20);

void BM_ParseQuery(benchmark::State& state) {
  const std::string query =
      "SELECT AVG(s0, s1, s2, s3, s4, s5, s6, s7) WHEN > 42.5 WITHIN 0.25 "
      "EVERY 10";
  for (auto _ : state) {
    auto spec = kc::ParseQuery(query);
    benchmark::DoNotOptimize(spec.ok());
  }
}
BENCHMARK(BM_ParseQuery);

}  // namespace
