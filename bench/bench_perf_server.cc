// P3 — server-path microbenchmarks: message application at a replica,
// full fleet ticks, aggregate query evaluation, and CQL parsing.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "fleet/sharded_fleet.h"
#include "query/parser.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace {

void BM_ReplicaApplyCorrection(benchmark::State& state) {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(0.1, 0.25);
  kc::ServerReplica replica(0, std::make_unique<kc::KalmanPredictor>(config));
  kc::Message init;
  init.source_id = 0;
  init.type = kc::MessageType::kInit;
  init.payload = {1.0, 0.0};
  (void)replica.OnMessage(init);

  kc::Message correction;
  correction.source_id = 0;
  correction.type = kc::MessageType::kCorrection;
  correction.payload = {1.0, 0.5};
  int64_t seq = 0;
  for (auto _ : state) {
    correction.seq = ++seq;
    correction.time = static_cast<double>(seq);
    replica.Tick();
    benchmark::DoNotOptimize(replica.OnMessage(correction).ok());
  }
}
BENCHMARK(BM_ReplicaApplyCorrection);

void BM_FleetStep(benchmark::State& state) {
  auto sources = static_cast<int>(state.range(0));
  kc::Fleet fleet;
  for (int i = 0; i < sources; ++i) {
    kc::RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.3;
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    kc::MakeDefaultKalmanPredictor(0.09, 0.01), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * sources);
}
BENCHMARK(BM_FleetStep)->Arg(10)->Arg(100)->Arg(1000);

// The sharded executor on the same workload: {sources, threads}. At
// threads=1 this measures the sharding overhead (it should be near
// BM_FleetStep); at threads=N it measures the parallel speedup. Answers
// are bit-identical across rows with the same source count.
void BM_ShardedFleetStep(benchmark::State& state) {
  auto sources = static_cast<int>(state.range(0));
  kc::ShardedFleet::Config config;
  config.threads = static_cast<size_t>(state.range(1));
  kc::ShardedFleet fleet(config);
  for (int i = 0; i < sources; ++i) {
    kc::RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.3;
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    kc::MakeDefaultKalmanPredictor(0.09, 0.01), 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * sources);
}
BENCHMARK(BM_ShardedFleetStep)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 4});

void BM_AggregateEvaluate(benchmark::State& state) {
  auto members = static_cast<int>(state.range(0));
  kc::Fleet fleet;
  for (int i = 0; i < members; ++i) {
    kc::RandomWalkGenerator::Config walk;
    fleet.AddSource(std::make_unique<kc::RandomWalkGenerator>(walk),
                    std::make_unique<kc::ValueCachePredictor>(), 1.0);
  }
  (void)fleet.Run(2);
  kc::QuerySpec spec;
  spec.kind = kc::AggregateKind::kAvg;
  for (int i = 0; i < members; ++i) spec.sources.push_back(i);
  (void)fleet.server().AddQuery("avg", spec);
  for (auto _ : state) {
    auto result = fleet.server().Evaluate("avg");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_AggregateEvaluate)->Arg(4)->Arg(64)->Arg(256);

void BM_ParseQuery(benchmark::State& state) {
  const std::string query =
      "SELECT AVG(s0, s1, s2, s3, s4, s5, s6, s7) WHEN > 42.5 WITHIN 0.25 "
      "EVERY 10";
  for (auto _ : state) {
    auto spec = kc::ParseQuery(query);
    benchmark::DoNotOptimize(spec.ok());
  }
}
BENCHMARK(BM_ParseQuery);

}  // namespace
