// E9 — Table "ablations": the design choices DESIGN.md calls out.
//
//   (a) Correction payload / sync mode: state vs state+cov vs raw
//       measurement — bytes per message vs contract exactness.
//   (b) Process-model order on a trending stream: RW vs CV vs CA.
//   (c) Adaptive noise estimation on vs off across stream characters.
//   (d) Joseph vs standard covariance update: numerical agreement.

#include <cmath>
#include <cstdio>
#include <memory>

#include "common.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace {

using kc::KalmanPredictor;

std::unique_ptr<kc::StreamGenerator> NoisyWalk() {
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.3;
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 0.4;
  return std::make_unique<kc::NoisyStream>(
      std::make_unique<kc::RandomWalkGenerator>(walk), noise);
}

kc::LinkReport Run(const kc::Predictor& proto, kc::StreamGenerator& stream,
                   double delta = 1.0, size_t ticks = 10000) {
  kc::LinkConfig config;
  config.ticks = ticks;
  config.delta = delta;
  config.seed = 41;
  return kc::RunLink(stream, proto, config);
}

KalmanPredictor::Config BaseConfig() {
  KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(0.09, 0.16);
  config.adaptive = kc::AdaptiveConfig{};
  return config;
}

}  // namespace

int main() {
  kc::bench::PrintHeader("E9 | Design ablations",
                         "all cells: 10000 readings, delta=1.0 unless noted");

  // (a) Sync mode. --------------------------------------------------------
  std::printf("\n(a) correction payload / sync mode (noisy random walk)\n");
  std::printf("%-14s %10s %12s %14s %16s\n", "mode", "messages", "bytes",
              "bytes/msg", "violations");
  for (auto mode : {KalmanPredictor::SyncMode::kState,
                    KalmanPredictor::SyncMode::kStateAndCov,
                    KalmanPredictor::SyncMode::kMeasurement}) {
    KalmanPredictor::Config config = BaseConfig();
    config.sync_mode = mode;
    KalmanPredictor proto(config);
    auto stream = NoisyWalk();
    kc::LinkReport r = Run(proto, *stream);
    std::printf("%-14s %10lld %12lld %14.1f %16lld\n", r.policy.c_str(),
                static_cast<long long>(r.messages),
                static_cast<long long>(r.bytes),
                static_cast<double>(r.bytes) /
                    static_cast<double>(std::max<int64_t>(r.messages, 1)),
                static_cast<long long>(r.contract_violations));
  }
  std::printf("  -> state sync is contract-exact at minimal payload; "
              "measurement sync can\n     briefly overshoot delta after "
              "jumps (its violations are the cost of the\n     cheaper "
              "protocol), and +cov pays extra bytes for server-side "
              "uncertainty.\n");

  // (b) Model order. -------------------------------------------------------
  std::printf("\n(b) process-model order on a trending stream "
              "(slope 0.3, wobble 0.05)\n");
  std::printf("%-22s %10s %18s\n", "model", "messages", "rmse vs truth");
  for (const char* model : {"random_walk", "constant_velocity",
                            "constant_acceleration"}) {
    KalmanPredictor::Config config;
    if (std::string(model) == "random_walk") {
      config.model = kc::MakeRandomWalkModel(0.09, 0.01);
    } else if (std::string(model) == "constant_velocity") {
      config.model = kc::MakeConstantVelocityModel(1.0, 0.01, 0.01);
    } else {
      config.model = kc::MakeConstantAccelerationModel(1.0, 0.001, 0.01);
    }
    KalmanPredictor proto(config);
    kc::LinearDriftGenerator::Config trend;
    trend.slope = 0.3;
    trend.wobble_sigma = 0.05;
    kc::LinearDriftGenerator stream(trend);
    kc::LinkReport r = Run(proto, stream);
    std::printf("%-22s %10lld %18.4f\n", model,
                static_cast<long long>(r.messages), r.err_vs_truth.rms());
  }
  std::printf("  -> matching the model order to the dynamics (CV for a ramp) "
              "suppresses an\n     order of magnitude more than a "
              "zeroth-order model; over-modeling (CA)\n     buys nothing "
              "further on a pure trend.\n");

  // (c) Adaptive noise estimation. -----------------------------------------
  std::printf("\n(c) adaptive process-noise estimation (regime-switching "
              "stream, delta=0.75)\n");
  std::printf("%-14s %10s %18s\n", "adaptation", "messages", "rmse vs truth");
  for (bool adaptive : {false, true}) {
    KalmanPredictor::Config config;
    config.model = kc::MakeRandomWalkModel(0.01, 0.04);  // Quiet-regime tune.
    if (adaptive) config.adaptive = kc::AdaptiveConfig{};
    KalmanPredictor proto(config);
    kc::RegimeSwitchingGenerator::Config regimes;
    regimes.regimes = {{4000, 0.1, 0.0}, {4000, 1.5, 0.0}, {4000, 0.1, 0.0}};
    kc::RegimeSwitchingGenerator stream(regimes);
    kc::LinkReport r = Run(proto, stream, 0.75, 12000);
    std::printf("%-14s %10lld %18.3f\n", adaptive ? "on" : "off",
                static_cast<long long>(r.messages), r.err_vs_truth.rms());
  }
  std::printf("  -> the frozen quiet tune looks cheaper by message count "
              "alone, but that is\n     over-smoothing: its estimate drifts "
              "far from truth in the loud regime\n     (high rmse). "
              "Adaptation spends messages to keep the estimate honest — \n"
              "     see bench_e5_adaptation for the per-phase breakdown.\n");

  // (d) Joseph vs standard update. -----------------------------------------
  std::printf("\n(d) covariance update form (numerical check, 100k steps)\n");
  {
    kc::KalmanFilter joseph(kc::MakeRandomWalkModel(0.09, 0.16),
                            kc::Vector{0.0}, kc::Matrix{{100.0}},
                            kc::KalmanFilter::UpdateForm::kJoseph);
    kc::KalmanFilter standard(kc::MakeRandomWalkModel(0.09, 0.16),
                              kc::Vector{0.0}, kc::Matrix{{100.0}},
                              kc::KalmanFilter::UpdateForm::kStandard);
    auto stream = NoisyWalk();
    stream->Reset(43);
    double max_state_diff = 0.0, max_cov_diff = 0.0;
    for (int i = 0; i < 100000; ++i) {
      kc::Sample s = stream->Next();
      joseph.Predict();
      standard.Predict();
      (void)joseph.Update(s.measured.value);
      (void)standard.Update(s.measured.value);
      max_state_diff = std::max(
          max_state_diff, std::fabs(joseph.state()[0] - standard.state()[0]));
      max_cov_diff = std::max(max_cov_diff,
                              std::fabs(joseph.covariance()(0, 0) -
                                        standard.covariance()(0, 0)));
    }
    std::printf("  max |state(joseph) - state(standard)| = %.3g\n",
                max_state_diff);
    std::printf("  max |cov(joseph)  - cov(standard)|  = %.3g\n", max_cov_diff);
    std::printf("  -> on well-conditioned scalar problems the forms agree to "
                "float precision;\n     Joseph stays the default for its PSD "
                "guarantee on ill-conditioned models\n     (property-tested "
                "in tests/kalman_filter_test.cc).\n");
  }
  return 0;
}
