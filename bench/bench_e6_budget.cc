// E6 — Figure "precision under a message budget" (claim C4): the second
// direction of the precision-resource tradeoff. Instead of fixing delta
// and counting messages, fix a message budget and measure the precision
// each policy delivers (the BudgetController steers delta adaptively).

#include <cstdio>
#include <memory>

#include "common.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/budget.h"

namespace {

kc::LinkReport RunBudgeted(const std::string& policy, double target_rate) {
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.25;
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 0.5;
  kc::NoisyStream stream(std::make_unique<kc::RandomWalkGenerator>(walk),
                         noise);
  auto proto = kc::bench::MakePolicy(policy);
  kc::LinkConfig config;
  config.ticks = 40000;
  config.delta = 1.0;  // Starting point only; the controller takes over.
  config.seed = 37;
  config.budget = kc::BudgetConfig{};
  config.budget->target_rate = target_rate;
  config.budget->window = 400;
  return kc::RunLink(stream, *proto, config);
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E6 | Achieved precision under a hard message budget",
      "noisy random walk, 40000 readings; controller steers delta to the "
      "budgeted rate");
  std::printf("%10s | %12s %12s %12s | %12s %12s %12s\n", "budget",
              "cache rate", "cache rmse", "cache delta", "kalman rate",
              "kalman rmse", "kalman delta");
  for (double budget : {0.005, 0.01, 0.02, 0.05, 0.10}) {
    kc::LinkReport cache = RunBudgeted("value_cache", budget);
    kc::LinkReport kalman = RunBudgeted("kalman", budget);
    std::printf("%10.3f | %12.4f %12.3f %12.3f | %12.4f %12.3f %12.3f\n",
                budget, cache.messages_per_tick, cache.err_vs_truth.rms(),
                cache.final_delta, kalman.messages_per_tick,
                kalman.err_vs_truth.rms(), kalman.final_delta);
  }
  std::printf(
      "\nExpected shape: both policies converge to the budgeted rate, but at "
      "every\nbudget the kalman policy's achieved error against the true "
      "signal is lower —\nits corrections carry filtered state and its "
      "predictions cover the gaps, so it\ncan afford a tighter delta at the "
      "same message rate (claim C4).\n");
  return 0;
}
