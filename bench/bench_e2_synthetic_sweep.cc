// E2 — Table "messages vs delta, synthetic streams": the headline
// communication-overhead comparison (claims C1/C6).
//
// For every synthetic stream family and precision bound delta, prints the
// number of messages each suppression policy ships over 10k readings
// ("naive" streams every reading). Expected shape: kalman <= value_cache
// everywhere the stream has learnable structure, with the gap widest on
// trends and smooth drifts; every policy's cost falls as delta grows.

#include <cstdio>

#include "common.h"

int main() {
  constexpr size_t kTicks = 10000;
  constexpr uint64_t kSeed = 17;
  const double kDeltas[] = {0.25, 0.5, 1.0, 2.0, 4.0};

  kc::bench::PrintHeader(
      "E2 | Messages shipped vs precision bound (synthetic streams)",
      "10000 readings per cell; 'naive' = stream every reading = 10000 "
      "messages");

  const std::vector<std::string> kPolicies = {"value_cache", "linear", "ewma",
                                              "kalman", "kalman_cv"};
  for (const std::string& family : kc::bench::SyntheticFamilies()) {
    std::printf("\nstream: %s\n", family.c_str());
    std::printf("%8s %12s %12s %12s %12s %12s %14s\n", "delta", "value_cache",
                "linear", "ewma", "kalman", "kalman_cv", "best-kf saving");
    for (double delta : kDeltas) {
      long long counts[5];
      int i = 0;
      for (const std::string& policy : kPolicies) {
        kc::LinkReport report =
            kc::bench::RunOne(family, policy, delta, kTicks, kSeed);
        counts[i++] = report.messages;
      }
      long long best_kf = std::min(counts[3], counts[4]);
      double saving =
          counts[0] > 0
              ? 100.0 * (1.0 - static_cast<double>(best_kf) /
                                   static_cast<double>(counts[0]))
              : 0.0;
      std::printf("%8.2f %12lld %12lld %12lld %12lld %12lld %13.1f%%\n", delta,
                  counts[0], counts[1], counts[2], counts[3], counts[4],
                  saving);
    }
  }

  std::printf("\nExpected shape: every column shrinks as delta grows. The "
              "random-walk kalman\nwins wherever there is noise or mean "
              "reversion to exploit (noisy_walk, ar1,\nsmooth_walk); the "
              "constant-velocity kalman_cv additionally crushes "
              "linear_trend\nand locally-linear sinusoid segments — one "
              "framework, swap the model (C1/C6).\n");
  return 0;
}
