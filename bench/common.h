#ifndef KALMANCAST_BENCH_COMMON_H_
#define KALMANCAST_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "server/simulation.h"
#include "streams/generator.h"
#include "suppression/predictor.h"

namespace kc::bench {

/// Named stream families used across the experiment suite. Scalar unless
/// noted. Each family's configuration is fixed so every bench and every
/// rerun sees identical workloads.
///
///   smooth_walk   random walk, sigma=0.5, no sensor noise
///   noisy_walk    random walk sigma=0.3 + Gaussian sensor noise 0.4
///   linear_trend  slope 0.3 ramp with tiny wobble
///   sinusoid      period-200 sine, amplitude 5
///   ar1           mean-reverting AR(1), phi=0.95
///   regime        volatility regime switching (0.1 <-> 1.5)
///   bursty        ON/OFF Pareto traffic (real-world stand-in)
///   temperature   diurnal cycle + weather front + sensor noise (stand-in)
///   vehicle       2-D trajectory + GPS noise (stand-in, dims=2)
std::unique_ptr<StreamGenerator> MakeStream(const std::string& family);

/// All scalar synthetic families (E2 grid).
const std::vector<std::string>& SyntheticFamilies();

/// Real-world stand-in families (E3 grid).
const std::vector<std::string>& RealWorldFamilies();

/// Named suppression policies.
///
///   value_cache      Olston-style approximate caching
///   linear           two-point dead reckoning
///   ewma             client-side exponential smoothing, alpha=0.5
///   kalman           adaptive dual KF, random-walk model (state sync)
///   kalman_cv        adaptive dual KF, constant-velocity model
///   kalman_seasonal  adaptive dual KF, trend+seasonal model (288-tick day)
///   kalman_cov       dual KF shipping state+covariance
///   kalman_meas      dual KF with measurement-sync corrections (ablation)
/// `dims` must be 1 for the scalar policies or 2 to get the planar
/// (constant-velocity 2-D) variants of value_cache/linear/kalman.
std::unique_ptr<Predictor> MakePolicy(const std::string& name,
                                      size_t dims = 1);

/// Default policy column set for the message-count tables.
const std::vector<std::string>& DefaultPolicies();

/// Prints a markdown-style table row separator-free header.
void PrintHeader(const std::string& title, const std::string& subtitle);

/// Runs `policy` over `family` and returns the report (convenience around
/// RunLink with the bench defaults).
LinkReport RunOne(const std::string& family, const std::string& policy,
                  double delta, size_t ticks, uint64_t seed);

}  // namespace kc::bench

#endif  // KALMANCAST_BENCH_COMMON_H_
