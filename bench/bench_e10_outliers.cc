// E10 — Table "outlier robustness" (extension): suppression under sensor
// glitches. Memoryless policies ship a correction for every outlier (and
// often a second one to come back); the gated Kalman policy identifies
// outliers by their NIS against the filter's own uncertainty and drops
// them before they cost bandwidth or accuracy.

#include <cstdio>
#include <memory>

#include "common.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace {

kc::LinkReport RunContaminated(std::unique_ptr<kc::Predictor> proto,
                               double outlier_prob) {
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.1;
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 0.2;
  noise.outlier_prob = outlier_prob;
  noise.outlier_scale = 50.0;  // Outliers up to +/-10 on a 0.2-sigma sensor.
  kc::NoisyStream stream(std::make_unique<kc::RandomWalkGenerator>(walk),
                         noise);
  kc::LinkConfig config;
  config.ticks = 10000;
  config.delta = 1.0;
  config.seed = 47;
  return kc::RunLink(stream, *proto, config);
}

std::unique_ptr<kc::Predictor> GatedKalman(double gate_prob) {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(0.04, 0.25);
  config.outlier_gate_prob = gate_prob;
  return std::make_unique<kc::KalmanPredictor>(std::move(config));
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E10 | Suppression under sensor outliers (extension)",
      "random walk + 0.2-sigma noise + uniform outliers up to +/-10; "
      "delta=1.0; 10000 readings");
  std::printf("%14s | %-18s %10s %14s %12s\n", "outlier prob", "policy",
              "messages", "rmse vs truth", "rejected");
  for (double prob : {0.0, 0.01, 0.02, 0.05}) {
    {
      kc::LinkReport r =
          RunContaminated(std::make_unique<kc::ValueCachePredictor>(), prob);
      std::printf("%14.2f | %-18s %10lld %14.3f %12s\n", prob, "value_cache",
                  static_cast<long long>(r.messages), r.err_vs_truth.rms(),
                  "-");
    }
    {
      kc::LinkReport r = RunContaminated(GatedKalman(0.0), prob);
      std::printf("%14.2f | %-18s %10lld %14.3f %12s\n", prob,
                  "kalman (no gate)", static_cast<long long>(r.messages),
                  r.err_vs_truth.rms(), "-");
    }
    {
      auto proto = GatedKalman(0.999);
      // Keep a raw pointer to read the rejection counter afterwards.
      auto* kp = static_cast<kc::KalmanPredictor*>(proto.get());
      (void)kp;
      kc::LinkReport r = RunContaminated(std::move(proto), prob);
      std::printf("%14.2f | %-18s %10lld %14.3f %12s\n", prob,
                  "kalman (gated)", static_cast<long long>(r.messages),
                  r.err_vs_truth.rms(), "see note");
    }
  }
  std::printf(
      "\nExpected shape: value_cache cost grows roughly linearly with the "
      "outlier rate\n(~2 messages per glitch: chase + return); the ungated "
      "kalman absorbs part of\neach hit through its gain; the chi-squared "
      "gate (p=0.999, accept-after-3) drops\nisolated glitches entirely, "
      "keeping both cost and truth-error near the clean\nbaseline. (The "
      "per-run rejection counters live on the source-side predictor\nclone "
      "inside the harness; gating_test.cc asserts them directly.)\n");
  return 0;
}
