#include "common.h"

#include <cassert>
#include <cstdio>

#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace kc::bench {

std::unique_ptr<StreamGenerator> MakeStream(const std::string& family) {
  if (family == "smooth_walk") {
    RandomWalkGenerator::Config config;
    config.step_sigma = 0.5;
    return std::make_unique<RandomWalkGenerator>(config);
  }
  if (family == "noisy_walk") {
    RandomWalkGenerator::Config config;
    config.step_sigma = 0.3;
    NoiseConfig noise;
    noise.gaussian_sigma = 0.4;
    return std::make_unique<NoisyStream>(
        std::make_unique<RandomWalkGenerator>(config), noise);
  }
  if (family == "linear_trend") {
    LinearDriftGenerator::Config config;
    config.slope = 0.3;
    config.wobble_sigma = 0.05;
    return std::make_unique<LinearDriftGenerator>(config);
  }
  if (family == "sinusoid") {
    SinusoidGenerator::Config config;
    config.amplitude = 5.0;
    config.period = 200.0;
    config.amplitude_drift_sigma = 0.01;
    return std::make_unique<SinusoidGenerator>(config);
  }
  if (family == "ar1") {
    Ar1Generator::Config config;
    config.phi = 0.95;
    config.sigma = 0.5;
    return std::make_unique<Ar1Generator>(config);
  }
  if (family == "regime") {
    RegimeSwitchingGenerator::Config config;
    config.regimes = {{2500, 0.1, 0.0}, {2500, 1.5, 0.0}};
    return std::make_unique<RegimeSwitchingGenerator>(config);
  }
  if (family == "bursty") {
    BurstyTrafficGenerator::Config config;
    config.base_rate = 10.0;
    config.pareto_scale = 8.0;
    return std::make_unique<BurstyTrafficGenerator>(config);
  }
  if (family == "temperature") {
    DiurnalTemperatureGenerator::Config config;
    NoiseConfig noise;
    noise.gaussian_sigma = 0.3;
    return std::make_unique<NoisyStream>(
        std::make_unique<DiurnalTemperatureGenerator>(config), noise);
  }
  if (family == "vehicle") {
    Vehicle2DGenerator::Config config;
    NoiseConfig noise;
    noise.gaussian_sigma = 3.0;
    return std::make_unique<NoisyStream>(
        std::make_unique<Vehicle2DGenerator>(config), noise);
  }
  assert(false && "unknown stream family");
  return nullptr;
}

const std::vector<std::string>& SyntheticFamilies() {
  static const std::vector<std::string>* families = new std::vector<std::string>{
      "smooth_walk", "noisy_walk", "linear_trend", "sinusoid", "ar1"};
  return *families;
}

const std::vector<std::string>& RealWorldFamilies() {
  static const std::vector<std::string>* families =
      new std::vector<std::string>{"temperature", "bursty", "vehicle"};
  return *families;
}

std::unique_ptr<Predictor> MakePolicy(const std::string& name, size_t dims) {
  if (name == "value_cache") return std::make_unique<ValueCachePredictor>(dims);
  if (name == "linear") return std::make_unique<LinearPredictor>(dims);
  if (name == "ewma") return std::make_unique<EwmaPredictor>(dims, 0.5);

  KalmanPredictor::Config config;
  if (dims == 2) {
    config.model = MakeConstantVelocity2DModel(1.0, 0.5, 9.0);
  } else if (name == "kalman_cv") {
    config.model = MakeConstantVelocityModel(1.0, 0.05, 0.16);
  } else if (name == "kalman_seasonal") {
    // Tuned for the diurnal temperature stand-in (288-tick day).
    config.model = MakeTrendSeasonalModel(2.0 * 3.14159265358979 / 288.0, 1.0,
                                          1e-5, 1e-4, 0.09);
  } else {
    config.model = MakeRandomWalkModel(0.1, 0.16);
  }
  config.adaptive = AdaptiveConfig{};
  if (name == "kalman_cov") {
    config.sync_mode = KalmanPredictor::SyncMode::kStateAndCov;
  } else if (name == "kalman_meas") {
    config.sync_mode = KalmanPredictor::SyncMode::kMeasurement;
  }
  return std::make_unique<KalmanPredictor>(std::move(config));
}

const std::vector<std::string>& DefaultPolicies() {
  static const std::vector<std::string>* policies = new std::vector<std::string>{
      "value_cache", "linear", "ewma", "kalman"};
  return *policies;
}

void PrintHeader(const std::string& title, const std::string& subtitle) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("==============================================================="
              "=================\n");
}

LinkReport RunOne(const std::string& family, const std::string& policy,
                  double delta, size_t ticks, uint64_t seed) {
  auto stream = MakeStream(family);
  auto proto = MakePolicy(policy, stream->dims());
  LinkConfig config;
  config.ticks = ticks;
  config.delta = delta;
  config.seed = seed;
  return RunLink(*stream, *proto, config);
}

}  // namespace kc::bench
