// E7 — Table "aggregate queries": server-side use of cached predictors for
// SUM/AVG queries over N heterogeneous sources under a total error budget,
// comparing the error-budget allocation policies.
//
// Sources are random walks with log-spaced volatilities (a 20x spread), so
// a uniform split wastes budget on quiet sources while starving volatile
// ones. Variance-proportional uses prior knowledge; adaptive learns the
// same split online from observed message rates.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "server/allocation.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace {

struct FleetResult {
  long long messages;
  double worst_avg_error;  // max |AVG answer - true AVG| over the run.
  double bound;            // Guaranteed bound on the AVG answer.
};

std::vector<double> Volatilities(int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    // Log-spaced from 0.1 to 2.0.
    double t = n == 1 ? 0.0 : static_cast<double>(i) / (n - 1);
    out.push_back(0.1 * std::pow(20.0, t));
  }
  return out;
}

FleetResult RunFleet(int n, double avg_budget, kc::AllocationPolicy policy,
                     size_t ticks) {
  using namespace kc;
  auto volatilities = Volatilities(n);
  double sum_budget = avg_budget * n;

  Fleet fleet;
  for (int i = 0; i < n; ++i) {
    RandomWalkGenerator::Config walk;
    walk.step_sigma = volatilities[static_cast<size_t>(i)];
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    MakeDefaultKalmanPredictor(
                        walk.step_sigma * walk.step_sigma, 0.01),
                    /*delta placeholder=*/1.0);
  }
  auto bounds = AllocateBounds(policy, sum_budget, volatilities);
  for (int i = 0; i < n; ++i) fleet.SetDelta(i, bounds[static_cast<size_t>(i)]);

  QuerySpec avg_spec;
  avg_spec.kind = AggregateKind::kAvg;
  for (int i = 0; i < n; ++i) avg_spec.sources.push_back(i);
  (void)fleet.server().AddQuery("avg", avg_spec);

  AdaptiveAllocator allocator(sum_budget, static_cast<size_t>(n));
  std::vector<int64_t> last_counts(static_cast<size_t>(n), 0);
  constexpr int64_t kRebalanceEvery = 500;

  FleetResult result{0, 0.0, 0.0};
  for (size_t t = 0; t < ticks; ++t) {
    if (!fleet.Step().ok()) break;
    if (policy == AllocationPolicy::kAdaptive &&
        (t + 1) % kRebalanceEvery == 0) {
      std::vector<int64_t> window(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        int64_t total = fleet.MessagesOf(i);
        window[static_cast<size_t>(i)] = total - last_counts[static_cast<size_t>(i)];
        last_counts[static_cast<size_t>(i)] = total;
      }
      allocator.Rebalance(window);
      for (int i = 0; i < n; ++i) {
        fleet.SetDelta(i, allocator.deltas()[static_cast<size_t>(i)]);
      }
    }
    if (t % 10 != 9) continue;  // Evaluate the query every 10 ticks.
    auto answer = fleet.server().Evaluate("avg");
    if (!answer.ok()) continue;
    double true_avg = 0.0;
    for (int i = 0; i < n; ++i) true_avg += fleet.TruthOf(i);
    true_avg /= n;
    result.worst_avg_error =
        std::max(result.worst_avg_error, std::fabs(answer->value - true_avg));
    result.bound = answer->bound;
  }
  result.messages = fleet.TotalMessages();
  return result;
}

}  // namespace

int main() {
  // The budget must leave even the most volatile source unsaturated
  // (message rate well below one per tick) — that is the regime the
  // allocation theory addresses; a saturated source costs ~1 msg/tick no
  // matter how its bound is trimmed.
  constexpr size_t kTicks = 8000;
  constexpr double kAvgBudget = 4.0;

  kc::bench::PrintHeader(
      "E7 | AVG queries over N heterogeneous sources (total budget fixed)",
      "random walks, volatilities log-spaced 0.1..2.0; AVG error budget "
      "4.0; 8000 ticks");
  std::printf("%4s %-24s %12s %16s %12s\n", "N", "allocation", "messages",
              "worst AVG error", "AVG bound");

  for (int n : {4, 16, 64}) {
    for (auto policy : {kc::AllocationPolicy::kUniform,
                        kc::AllocationPolicy::kVarianceProportional,
                        kc::AllocationPolicy::kAdaptive}) {
      FleetResult r = RunFleet(n, kAvgBudget, policy, kTicks);
      std::printf("%4d %-24s %12lld %16.4f %12.4f\n", n,
                  kc::AllocationPolicyName(policy), r.messages,
                  r.worst_avg_error, r.bound);
    }
  }

  std::printf(
      "\nExpected shape: every configuration keeps the worst observed AVG "
      "error under\nthe budget (soundness), while variance-proportional and "
      "adaptive ship fewer\nmessages than uniform — the budget flows to the "
      "volatile sources that need it\n(for random walks the optimal split is "
      "delta_i ~ sigma_i). Adaptive approaches\nvariance-proportional "
      "without prior knowledge of the volatilities.\n");
  return 0;
}
