// E8 — Table "server scalability": end-to-end ingest throughput of the
// stream server as sources and continuous queries scale (DSMS viability;
// the paper's framing requires the filtering machinery to be cheap enough
// to host per-source at the server).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common.h"
#include "query/parser.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace {

struct ScaleResult {
  double readings_per_sec;
  double messages_per_tick;
  double query_evals_per_sec;
};

ScaleResult RunScale(int sources, int queries, size_t ticks) {
  using namespace kc;
  Fleet fleet;
  for (int i = 0; i < sources; ++i) {
    RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.2 + 0.01 * (i % 10);
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    MakeDefaultKalmanPredictor(0.04, 0.01), /*delta=*/1.0);
  }
  // Warm up so every source is initialized before queries register.
  (void)fleet.Run(2);

  for (int q = 0; q < queries; ++q) {
    // AVG over a rotating window of 8 sources.
    std::string list;
    for (int k = 0; k < 8; ++k) {
      int id = (q * 8 + k) % sources;
      list += (k ? "," : "") + std::string("s") + std::to_string(id);
    }
    auto spec = ParseQuery("SELECT AVG(" + list + ") WITHIN 10");
    if (spec.ok()) {
      (void)fleet.server().AddQuery("q" + std::to_string(q), *spec);
    }
  }

  auto start = std::chrono::steady_clock::now();
  int64_t query_evals = 0;
  for (size_t t = 0; t < ticks; ++t) {
    if (!fleet.Step().ok()) break;
    if (t % 10 == 9) {
      auto results = fleet.server().EvaluateAll();
      query_evals += static_cast<int64_t>(results.size());
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  ScaleResult out;
  out.readings_per_sec =
      static_cast<double>(sources) * static_cast<double>(ticks) / elapsed;
  out.messages_per_tick =
      static_cast<double>(fleet.TotalMessages()) /
      (static_cast<double>(ticks) * static_cast<double>(sources));
  out.query_evals_per_sec = static_cast<double>(query_evals) / elapsed;
  return out;
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E8 | Stream server scalability (adaptive dual-KF on every source)",
      "readings/s = generator + client filter + suppression + server "
      "replica, single thread");
  std::printf("%8s %8s %10s %16s %16s %18s\n", "sources", "queries", "ticks",
              "readings/sec", "msgs/src-tick", "query evals/sec");
  struct Case {
    int sources;
    int queries;
    size_t ticks;
  };
  const Case cases[] = {
      {10, 2, 20000}, {50, 10, 8000},   {100, 20, 4000},
      {500, 50, 800}, {1000, 100, 400},
  };
  for (const Case& c : cases) {
    ScaleResult r = RunScale(c.sources, c.queries, c.ticks);
    std::printf("%8d %8d %10zu %16.0f %16.4f %18.0f\n", c.sources, c.queries,
                c.ticks, r.readings_per_sec, r.messages_per_tick,
                r.query_evals_per_sec);
  }
  std::printf(
      "\nExpected shape: throughput in the hundreds of thousands to millions "
      "of\nreadings/sec and roughly flat per-source cost as the fleet grows "
      "— the\nper-reading work is a constant-size filter step, so the "
      "server scales\nlinearly in sources on one core.\n");
  return 0;
}
