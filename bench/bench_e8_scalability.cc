// E8 — Table "server scalability": end-to-end ingest throughput of the
// stream server as sources and continuous queries scale (DSMS viability;
// the paper's framing requires the filtering machinery to be cheap enough
// to host per-source at the server).
//
// --threads=N drives the sharded fleet executor with N worker threads
// (default 1); --shards=M fixes the shard count (default max(threads, 8)).
// The determinism contract guarantees every number except wall-clock
// throughput is identical for any N and M.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common.h"
#include "fleet/sharded_fleet.h"
#include "query/parser.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace {

struct ScaleResult {
  double readings_per_sec;
  double messages_per_tick;
  double query_evals_per_sec;
  int64_t total_messages;
};

ScaleResult RunScale(int sources, int queries, size_t ticks, size_t threads,
                     size_t shards) {
  using namespace kc;
  ShardedFleet::Config config;
  config.threads = threads;
  config.num_shards = shards;
  ShardedFleet fleet(config);
  for (int i = 0; i < sources; ++i) {
    RandomWalkGenerator::Config walk;
    walk.step_sigma = 0.2 + 0.01 * (i % 10);
    fleet.AddSource(std::make_unique<RandomWalkGenerator>(walk),
                    MakeDefaultKalmanPredictor(0.04, 0.01), /*delta=*/1.0);
  }
  // Warm up so every source is initialized before queries register.
  (void)fleet.Run(2);

  for (int q = 0; q < queries; ++q) {
    // AVG over a rotating window of 8 sources (typically spanning shards).
    std::string list;
    for (int k = 0; k < 8; ++k) {
      int id = (q * 8 + k) % sources;
      list += (k ? "," : "") + std::string("s") + std::to_string(id);
    }
    auto spec = ParseQuery("SELECT AVG(" + list + ") WITHIN 10");
    if (spec.ok()) {
      (void)fleet.server().AddQuery("q" + std::to_string(q), *spec);
    }
  }

  auto start = std::chrono::steady_clock::now();
  int64_t query_evals = 0;
  for (size_t t = 0; t < ticks; ++t) {
    if (!fleet.Step().ok()) break;
    if (t % 10 == 9) {
      // Query evaluation reads the merged view after the tick barrier.
      auto results = fleet.server().EvaluateAll();
      query_evals += static_cast<int64_t>(results.size());
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  ScaleResult out;
  out.readings_per_sec =
      static_cast<double>(sources) * static_cast<double>(ticks) / elapsed;
  out.messages_per_tick =
      static_cast<double>(fleet.TotalMessages()) /
      (static_cast<double>(ticks) * static_cast<double>(sources));
  out.query_evals_per_sec = static_cast<double>(query_evals) / elapsed;
  out.total_messages = fleet.TotalMessages();
  return out;
}

size_t FlagValue(int argc, char** argv, const char* name, size_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      long v = std::atol(argv[i] + prefix.size());
      if (v > 0) return static_cast<size_t>(v);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = FlagValue(argc, argv, "threads", 1);
  size_t shards = FlagValue(argc, argv, "shards", 0);
  kc::bench::PrintHeader(
      "E8 | Stream server scalability (adaptive dual-KF on every source)",
      "readings/s = generator + client filter + suppression + server "
      "replica; --threads=" + std::to_string(threads) +
      (shards ? " --shards=" + std::to_string(shards) : std::string()) +
      " (sharded fleet executor)");
  std::printf("%8s %8s %10s %16s %16s %18s\n", "sources", "queries", "ticks",
              "readings/sec", "msgs/src-tick", "query evals/sec");
  struct Case {
    int sources;
    int queries;
    size_t ticks;
  };
  const Case cases[] = {
      {10, 2, 20000}, {50, 10, 8000},   {100, 20, 4000},
      {500, 50, 800}, {1000, 100, 400},
  };
  for (const Case& c : cases) {
    ScaleResult r = RunScale(c.sources, c.queries, c.ticks, threads, shards);
    std::printf("%8d %8d %10zu %16.0f %16.4f %18.0f\n", c.sources, c.queries,
                c.ticks, r.readings_per_sec, r.messages_per_tick,
                r.query_evals_per_sec);
  }
  std::printf(
      "\nExpected shape: throughput in the hundreds of thousands to millions "
      "of\nreadings/sec, roughly flat per-source cost as the fleet grows, "
      "and\nnear-linear scaling in --threads on multi-core hardware (the "
      "per-reading\nwork is a constant-size filter step and shards share no "
      "state). Message\ncounts and query answers are bit-identical for every "
      "--threads value.\n");
  return 0;
}
