// E3 — Figure "messages vs delta, real-world streams" (claim C5).
//
// The paper evaluated on real sensor/moving-object/network traces; per the
// substitution table in DESIGN.md these are stood in for by generators
// matching each trace's statistical character (diurnal temperature,
// GPS-noised vehicle trajectories, heavy-tailed bursty traffic). The CSV
// trace loader (streams/trace.h) accepts real traces in place of these
// generators without touching this harness.

#include <cstdio>

#include "common.h"

namespace {

/// Per-family delta grids, scaled to each signal's natural range.
const double* DeltasFor(const std::string& family, size_t* n) {
  static const double kTemperature[] = {0.1, 0.25, 0.5, 1.0, 2.0};
  static const double kBursty[] = {0.5, 1.0, 2.0, 5.0, 10.0};
  static const double kVehicle[] = {5.0, 10.0, 25.0, 50.0, 100.0};
  *n = 5;
  if (family == "temperature") return kTemperature;
  if (family == "bursty") return kBursty;
  return kVehicle;
}

}  // namespace

int main() {
  constexpr size_t kTicks = 10000;
  constexpr uint64_t kSeed = 23;

  kc::bench::PrintHeader(
      "E3 | Messages shipped vs precision bound (real-world stand-ins)",
      "10000 readings per cell; vehicle is 2-D (bounds in meters)");

  for (const std::string& family : kc::bench::RealWorldFamilies()) {
    size_t n_deltas = 0;
    const double* deltas = DeltasFor(family, &n_deltas);
    bool seasonal = family == "temperature";  // Model-matched extra column.
    std::printf("\nstream: %s\n", family.c_str());
    std::printf("%8s %12s %12s %12s %15s %14s\n", "delta", "value_cache",
                "linear", "kalman", seasonal ? "kalman_seasonal" : "-",
                "best-kf saving");
    for (size_t d = 0; d < n_deltas; ++d) {
      long long cache = kc::bench::RunOne(family, "value_cache", deltas[d],
                                          kTicks, kSeed)
                            .messages;
      long long linear =
          kc::bench::RunOne(family, "linear", deltas[d], kTicks, kSeed)
              .messages;
      long long kalman =
          kc::bench::RunOne(family, "kalman", deltas[d], kTicks, kSeed)
              .messages;
      long long best_kf = kalman;
      long long seasonal_msgs = 0;
      if (seasonal) {
        seasonal_msgs = kc::bench::RunOne(family, "kalman_seasonal", deltas[d],
                                          kTicks, kSeed)
                            .messages;
        best_kf = std::min(best_kf, seasonal_msgs);
      }
      double saving = cache > 0 ? 100.0 * (1.0 - static_cast<double>(best_kf) /
                                                     static_cast<double>(cache))
                                : 0.0;
      if (seasonal) {
        std::printf("%8.2f %12lld %12lld %12lld %15lld %13.1f%%\n", deltas[d],
                    cache, linear, kalman, seasonal_msgs, saving);
      } else {
        std::printf("%8.2f %12lld %12lld %12lld %15s %13.1f%%\n", deltas[d],
                    cache, linear, kalman, "-", saving);
      }
    }
  }

  std::printf(
      "\nExpected shape: large kalman savings on temperature (smooth diurnal "
      "structure)\nand vehicle (velocity structure + GPS noise); the "
      "advantage narrows on bursty\ntraffic, whose jumps no predictor "
      "anticipates — matching the paper's framing\nthat the KF adapts across "
      "stream characteristics rather than winning one case.\n");
  return 0;
}
