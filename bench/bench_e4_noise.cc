// E4 — Figure "noise sensitivity" (claim C2): message cost as a function
// of sensor noise at a fixed precision bound.
//
// Memoryless policies must ship a correction whenever noise alone carries
// the reading outside delta, so their cost explodes as sigma approaches
// delta. The Kalman policy protects the *filtered* signal, shipping state
// only when the underlying process actually moved.

#include <cstdio>
#include <memory>

#include "common.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace {

kc::LinkReport RunNoisy(std::unique_ptr<kc::Predictor> proto,
                        double noise_sigma, double delta) {
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.2;  // The true process drifts slowly.
  kc::NoiseConfig noise;
  noise.gaussian_sigma = noise_sigma;
  kc::NoisyStream stream(std::make_unique<kc::RandomWalkGenerator>(walk),
                         noise);
  kc::LinkConfig config;
  config.ticks = 10000;
  config.delta = delta;
  config.seed = 29;
  return kc::RunLink(stream, *proto, config);
}

/// The R-adaptive dual KF: it does not need to be told the sensor noise;
/// the innovation statistics reveal it online (claim C2).
std::unique_ptr<kc::Predictor> AdaptiveRKalman() {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(0.04, 0.16);
  kc::AdaptiveConfig adaptive;
  adaptive.adapt_q = true;
  adaptive.adapt_r = true;
  config.adaptive = adaptive;
  return std::make_unique<kc::KalmanPredictor>(std::move(config));
}

}  // namespace

int main() {
  constexpr double kDelta = 1.0;
  kc::bench::PrintHeader(
      "E4 | Message cost vs sensor noise (delta fixed at 1.0)",
      "random walk with step sigma 0.2; 10000 readings; the kalman "
      "variants are told R for sigma=0.4 only — kalman_adaptR must learn "
      "the real noise online");
  std::printf("%12s %12s %12s %12s %14s | %12s %14s\n", "noise sigma",
              "value_cache", "ewma", "kalman", "kalman_adaptR", "cache rmse",
              "adaptR rmse");
  for (double sigma : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5}) {
    kc::LinkReport cache =
        RunNoisy(kc::bench::MakePolicy("value_cache"), sigma, kDelta);
    kc::LinkReport ewma = RunNoisy(kc::bench::MakePolicy("ewma"), sigma, kDelta);
    kc::LinkReport kalman =
        RunNoisy(kc::bench::MakePolicy("kalman"), sigma, kDelta);
    kc::LinkReport adapt_r = RunNoisy(AdaptiveRKalman(), sigma, kDelta);
    std::printf("%12.2f %12lld %12lld %12lld %14lld | %12.3f %14.3f\n", sigma,
                static_cast<long long>(cache.messages),
                static_cast<long long>(ewma.messages),
                static_cast<long long>(kalman.messages),
                static_cast<long long>(adapt_r.messages),
                cache.err_vs_truth.rms(), adapt_r.err_vs_truth.rms());
  }
  std::printf(
      "\nExpected shape: value_cache cost blows up once noise ~ delta (it "
      "chases noise);\nEWMA damps some of it; the fixed-R kalman degrades "
      "when the real noise exceeds\nits assumed R; the R-adaptive kalman "
      "re-estimates the sensor noise from its\ninnovations and keeps both "
      "cost and truth-error low across the whole sweep —\nthe paper's claim "
      "that the filter adapts to sensor noise (C2).\n");
  return 0;
}
