// P2 — Kalman filter step latency per bundled model, plus the full
// suppression decision path (tick + observe + contract check). These are
// the per-reading costs a source pays; they bound client-side viability
// on weak hardware.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "kalman/adaptive.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "kalman/ekf.h"
#include "kalman/imm.h"
#include "kalman/kalman_filter.h"
#include "kalman/ukf.h"
#include "suppression/policies.h"

namespace {

kc::StateSpaceModel ModelFor(int id) {
  switch (id) {
    case 0:
      return kc::MakeRandomWalkModel(0.1, 0.25);
    case 1:
      return kc::MakeConstantVelocityModel(1.0, 0.1, 0.25);
    case 2:
      return kc::MakeConstantAccelerationModel(1.0, 0.05, 0.25);
    case 3:
      return kc::MakeConstantVelocity2DModel(1.0, 0.1, 0.25);
    case 4:
      return kc::MakeConstantAcceleration2DModel(1.0, 0.05, 0.25);
    default:
      return kc::MakeConstantJerk2DModel(1.0, 0.01, 0.25);
  }
}

void BM_PredictUpdate(benchmark::State& state) {
  kc::StateSpaceModel model = ModelFor(static_cast<int>(state.range(0)));
  size_t n = model.state_dim();
  size_t m = model.obs_dim();
  kc::KalmanFilter kf(model, kc::Vector(n), kc::Matrix::ScalarDiagonal(n, 1.0));
  // Observations are drawn ahead of the timed loop: a Gaussian draw costs
  // ~55 ns, which would otherwise swamp the filter step being measured.
  kc::Rng rng(1);
  constexpr size_t kSteps = 1024;  // Power of two so the wrap is a mask.
  std::vector<double> zs(kSteps * m);
  for (double& v : zs) v = rng.Gaussian();
  kc::Vector z(m);
  size_t step = 0;
  for (auto _ : state) {
    const double* src = zs.data() + (step & (kSteps - 1)) * m;
    for (size_t d = 0; d < m; ++d) z[d] = src[d];
    ++step;
    kf.Predict();
    benchmark::DoNotOptimize(kf.Update(z).ok());
  }
  state.SetLabel(model.name);
}
BENCHMARK(BM_PredictUpdate)->DenseRange(0, 5);

/// BM_PredictUpdate plus the exact per-decision telemetry the serving path
/// adds: one trace scope (runtime-disabled, the production default), two
/// counter increments, and one histogram record. The delta against the
/// uninstrumented run is the observability tax; run_benches.sh writes it
/// into BENCH_perf.json as `observability_overhead`.
void BM_PredictUpdateInstrumented(benchmark::State& state) {
  kc::StateSpaceModel model = ModelFor(static_cast<int>(state.range(0)));
  size_t n = model.state_dim();
  size_t m = model.obs_dim();
  kc::KalmanFilter kf(model, kc::Vector(n), kc::Matrix::ScalarDiagonal(n, 1.0));
  kc::Rng rng(1);
  constexpr size_t kSteps = 1024;
  std::vector<double> zs(kSteps * m);
  for (double& v : zs) v = rng.Gaussian();
  kc::obs::MetricRegistry registry;
  kc::obs::Counter* decisions = registry.GetCounter("kc.agent.decisions");
  kc::obs::Counter* suppressed = registry.GetCounter("kc.agent.suppressed");
  kc::obs::Histogram* innovation = registry.GetHistogram(
      "kc.agent.innovation", kc::obs::Buckets::Exponential(1e-3, 4.0, 12));
  kc::Vector z(m);
  size_t step = 0;
  for (auto _ : state) {
    KC_TRACE_SCOPE("bench.predict_update");
    const double* src = zs.data() + (step & (kSteps - 1)) * m;
    for (size_t d = 0; d < m; ++d) z[d] = src[d];
    ++step;
    kf.Predict();
    benchmark::DoNotOptimize(kf.Update(z).ok());
    decisions->Inc();
    suppressed->Inc();
    innovation->Record(z[0]);
  }
  state.SetLabel(model.name);
}
BENCHMARK(BM_PredictUpdateInstrumented)->DenseRange(0, 5);

/// BM_PredictUpdateInstrumented plus this PR's flight-recorder and
/// watchdog feeds: one ring-slot Record and the three SourceHealth
/// On*() calls per decision. The delta against BM_PredictUpdate is the
/// full black-box tax; run_benches.sh writes it into BENCH_perf.json as
/// `recorder_overhead`.
void BM_PredictUpdateRecorded(benchmark::State& state) {
  kc::StateSpaceModel model = ModelFor(static_cast<int>(state.range(0)));
  size_t n = model.state_dim();
  size_t m = model.obs_dim();
  kc::KalmanFilter kf(model, kc::Vector(n), kc::Matrix::ScalarDiagonal(n, 1.0));
  kc::Rng rng(1);
  constexpr size_t kSteps = 1024;
  std::vector<double> zs(kSteps * m);
  for (double& v : zs) v = rng.Gaussian();
  kc::obs::MetricRegistry registry;
  kc::obs::FlightRecorder recorder(kc::obs::FlightRecorder::kDefaultCapacity);
  kc::obs::HealthMonitor health;
  recorder.BindMetrics(&registry);
  health.BindMetrics(&registry);
  health.BindRecorder(&recorder);
  kc::obs::SourceRecorder* ring = recorder.ForSource(0);
  kc::obs::SourceHealth* entry = health.ForSource(0, m);
  kc::Vector z(m);
  size_t step = 0;
  int64_t tick = 0;
  for (auto _ : state) {
    KC_TRACE_SCOPE("bench.predict_update");
    const double* src = zs.data() + (step & (kSteps - 1)) * m;
    for (size_t d = 0; d < m; ++d) z[d] = src[d];
    ++step;
    kf.Predict();
    benchmark::DoNotOptimize(kf.Update(z).ok());
    ++tick;
    ring->Record(tick, kc::obs::RecorderEventKind::kSuppress, tick, z[0]);
    entry->OnTick();
    entry->OnNis(static_cast<double>(m));  // In-band: no transition churn.
    entry->OnDecision(/*suppressed=*/true);
  }
  state.SetLabel(model.name);
}
BENCHMARK(BM_PredictUpdateRecorded)->DenseRange(0, 5);

/// BM_PredictUpdate plus the precision auditor at its default cadence:
/// every iteration pays the tick % sample_every check, and every fourth
/// pays a full Sample() (containment test, utilization + staleness
/// histogram records). The delta against BM_PredictUpdate is the audit
/// tax; run_benches.sh writes it into BENCH_perf.json as
/// `audit_overhead`, and check_bench_regress.sh diffs it.
void BM_PredictUpdateAudited(benchmark::State& state) {
  kc::StateSpaceModel model = ModelFor(static_cast<int>(state.range(0)));
  size_t n = model.state_dim();
  size_t m = model.obs_dim();
  kc::KalmanFilter kf(model, kc::Vector(n), kc::Matrix::ScalarDiagonal(n, 1.0));
  kc::Rng rng(1);
  constexpr size_t kSteps = 1024;
  std::vector<double> zs(kSteps * m);
  for (double& v : zs) v = rng.Gaussian();
  kc::obs::MetricRegistry registry;
  kc::obs::PrecisionAuditor auditor;  // Default: sample_every = 4.
  auditor.BindMetrics(&registry);
  kc::obs::SourceAudit* audit = auditor.ForSource(0);
  kc::Vector z(m);
  size_t step = 0;
  int64_t tick = 0;
  for (auto _ : state) {
    const double* src = zs.data() + (step & (kSteps - 1)) * m;
    for (size_t d = 0; d < m; ++d) z[d] = src[d];
    ++step;
    kf.Predict();
    benchmark::DoNotOptimize(kf.Update(z).ok());
    ++tick;
    if (auditor.ShouldSample(tick)) {
      audit->Sample(tick, std::fabs(z[0]), /*bound=*/4.0,
                    /*staleness_ticks=*/0, /*degraded=*/false);
    }
  }
  state.SetLabel(model.name);
}
BENCHMARK(BM_PredictUpdateAudited)->DenseRange(0, 5);

void BM_PredictOnly(benchmark::State& state) {
  kc::StateSpaceModel model = ModelFor(static_cast<int>(state.range(0)));
  size_t n = model.state_dim();
  kc::KalmanFilter kf(model, kc::Vector(n), kc::Matrix::ScalarDiagonal(n, 1.0));
  for (auto _ : state) {
    kf.Predict();
    benchmark::DoNotOptimize(kf.state().data().data());
  }
  state.SetLabel(model.name);
}
BENCHMARK(BM_PredictOnly)->DenseRange(0, 5);

void BM_AdaptiveOverhead(benchmark::State& state) {
  kc::KalmanFilter kf(kc::MakeRandomWalkModel(0.1, 0.25), kc::Vector{0.0},
                      kc::Matrix{{1.0}});
  kc::AdaptiveNoiseEstimator adaptive;
  kc::Rng rng(2);
  for (auto _ : state) {
    kf.Predict();
    benchmark::DoNotOptimize(kf.Update(kc::Vector{rng.Gaussian()}).ok());
    adaptive.AfterUpdate(kf);
  }
}
BENCHMARK(BM_AdaptiveOverhead);

/// The whole client-side per-reading path of the state-sync policy:
/// shadow tick, private filter step, contract check, (rare) correction.
void BM_SuppressionDecision(benchmark::State& state) {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(0.1, 0.25);
  config.adaptive = kc::AdaptiveConfig{};
  kc::KalmanPredictor predictor(config);
  kc::Reading first;
  first.value = kc::Vector{0.0};
  predictor.Init(first);
  kc::Rng rng(3);
  double delta = 1.0;
  int64_t seq = 0;
  double level = 0.0;
  for (auto _ : state) {
    ++seq;
    level += rng.Gaussian(0.0, 0.2);
    kc::Reading z;
    z.seq = seq;
    z.time = static_cast<double>(seq);
    z.value = kc::Vector{level + rng.Gaussian(0.0, 0.3)};
    predictor.Tick();
    predictor.ObserveLocal(z);
    double err = std::fabs(predictor.Target()[0] - predictor.Predict()[0]);
    if (err > delta) {
      auto payload = predictor.EncodeCorrection(z);
      benchmark::DoNotOptimize(
          predictor.ApplyCorrection(seq, z.time, payload).ok());
    }
  }
}
BENCHMARK(BM_SuppressionDecision);

void BM_SerializeState(benchmark::State& state) {
  kc::StateSpaceModel model = ModelFor(3);  // Largest bundled model (n=4).
  kc::KalmanFilter kf(model, kc::Vector(4), kc::Matrix::ScalarDiagonal(4, 1.0));
  for (auto _ : state) {
    auto buf = kf.SerializeState();
    benchmark::DoNotOptimize(buf.data());
  }
}
BENCHMARK(BM_SerializeState);

void BM_EkfPredictUpdate(benchmark::State& state) {
  kc::NonlinearModel model =
      kc::MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.25);
  kc::Vector x0(5);
  x0[2] = 5.0;
  kc::ExtendedKalmanFilter ekf(model, x0, kc::Matrix::ScalarDiagonal(5, 1.0));
  kc::Rng rng(4);
  for (auto _ : state) {
    ekf.Predict();
    benchmark::DoNotOptimize(
        ekf.Update(kc::Vector{rng.Gaussian(), rng.Gaussian()}).ok());
  }
}
BENCHMARK(BM_EkfPredictUpdate);

void BM_UkfPredictUpdate(benchmark::State& state) {
  kc::NonlinearModel model =
      kc::MakeCoordinatedTurnModel(1.0, 0.01, 0.05, 1e-4, 0.25);
  kc::Vector x0(5);
  x0[2] = 5.0;
  kc::UnscentedKalmanFilter ukf(model, x0, kc::Matrix::ScalarDiagonal(5, 1.0));
  kc::Rng rng(5);
  for (auto _ : state) {
    ukf.Predict();
    benchmark::DoNotOptimize(
        ukf.Update(kc::Vector{rng.Gaussian(), rng.Gaussian()}).ok());
  }
}
BENCHMARK(BM_UkfPredictUpdate);

void BM_ImmPredictUpdate(benchmark::State& state) {
  std::vector<kc::KalmanFilter> filters;
  filters.emplace_back(kc::MakeRandomWalkModel(0.01, 0.25), kc::Vector{0.0},
                       kc::Matrix{{1.0}});
  filters.emplace_back(kc::MakeRandomWalkModel(4.0, 0.25), kc::Vector{0.0},
                       kc::Matrix{{1.0}});
  kc::Imm imm(std::move(filters), kc::Matrix{{0.95, 0.05}, {0.05, 0.95}},
              kc::Vector{0.5, 0.5});
  kc::Rng rng(6);
  for (auto _ : state) {
    imm.Predict();
    benchmark::DoNotOptimize(imm.Update(kc::Vector{rng.Gaussian()}).ok());
  }
}
BENCHMARK(BM_ImmPredictUpdate);

}  // namespace
