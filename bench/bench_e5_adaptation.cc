// E5 — Figure "adaptation" (claim C3): behaviour across volatility regime
// switches, adaptive vs frozen Kalman filters.
//
// The stream's volatility jumps 15x at tick 4000 and drops back at 8000.
// Cost and accuracy must be read together: an over-smoothing filter
// (frozen quiet tune) is cheap because its filtered estimate barely moves
// — while drifting far from the real signal. A loose tune tracks but
// overpays in the quiet phases. The innovation-driven adaptive filter
// re-learns Q online and delivers near-best accuracy at near-best cost in
// *every* phase, which is the point of claim C3.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "common/stats.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace {

constexpr size_t kPhaseLen = 4000;
constexpr size_t kTicks = 3 * kPhaseLen;

std::unique_ptr<kc::StreamGenerator> MakeRegimeStream() {
  kc::RegimeSwitchingGenerator::Config config;
  config.regimes = {{static_cast<int64_t>(kPhaseLen), 0.1, 0.0},
                    {static_cast<int64_t>(kPhaseLen), 1.5, 0.0},
                    {static_cast<int64_t>(kPhaseLen), 0.1, 0.0}};
  return std::make_unique<kc::RegimeSwitchingGenerator>(config);
}

std::unique_ptr<kc::Predictor> MakeKalman(double q, bool adaptive) {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeRandomWalkModel(q, 0.04);
  if (adaptive) config.adaptive = kc::AdaptiveConfig{};
  return std::make_unique<kc::KalmanPredictor>(std::move(config));
}

struct PhaseStats {
  long long messages[3] = {0, 0, 0};
  double rmse[3] = {0.0, 0.0, 0.0};
};

PhaseStats RunVariant(const kc::Predictor& proto) {
  auto stream = MakeRegimeStream();
  kc::LinkConfig config;
  config.ticks = kTicks;
  config.delta = 0.75;
  config.seed = 31;
  std::vector<kc::TrajectoryPoint> trajectory;
  (void)kc::RunLinkTraced(*stream, proto, config, &trajectory);

  PhaseStats out;
  kc::RunningStats err[3];
  long long prev_cum = 0;
  for (size_t i = 0; i < trajectory.size(); ++i) {
    size_t phase = std::min<size_t>(i / kPhaseLen, 2);
    err[phase].Add(trajectory[i].server_view - trajectory[i].truth);
    long long cum = trajectory[i].cumulative_messages;
    out.messages[phase] += cum - prev_cum;
    prev_cum = cum;
  }
  for (int p = 0; p < 3; ++p) out.rmse[p] = err[p].rms();
  return out;
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E5 | Adaptation across volatility regimes (0.1 -> 1.5 -> 0.1, "
      "delta=0.75)",
      "per-phase messages and server-view RMSE vs ground truth (4000 ticks "
      "per phase)");

  struct Variant {
    const char* name;
    PhaseStats stats;
  };
  Variant variants[] = {
      {"adaptive_kf", RunVariant(*MakeKalman(0.01, true))},
      {"frozen_kf(quiet)", RunVariant(*MakeKalman(0.01, false))},
      {"frozen_kf(loud)", RunVariant(*MakeKalman(2.25, false))},
      {"value_cache", RunVariant(*kc::bench::MakePolicy("value_cache"))},
  };

  std::printf("%-18s | %9s %9s | %9s %9s | %9s %9s | %8s\n", "variant",
              "quiet#1", "rmse", "LOUD", "rmse", "quiet#2", "rmse", "total");
  for (const Variant& v : variants) {
    long long total =
        v.stats.messages[0] + v.stats.messages[1] + v.stats.messages[2];
    std::printf("%-18s | %9lld %9.3f | %9lld %9.3f | %9lld %9.3f | %8lld\n",
                v.name, v.stats.messages[0], v.stats.rmse[0],
                v.stats.messages[1], v.stats.rmse[1], v.stats.messages[2],
                v.stats.rmse[2], total);
  }

  std::printf(
      "\nExpected shape: the quiet-tuned frozen filter is cheap everywhere "
      "but its\nover-smoothed estimate drifts badly in the LOUD phase (high "
      "rmse); the\nloud-tuned filter tracks but overpays in the quiet "
      "phases; value_cache pays\nfull price in LOUD. The adaptive filter "
      "re-learns Q within a window of each\nswitch: quiet-phase cost close "
      "to the quiet tune, LOUD-phase accuracy close to\nthe loud tune "
      "(claim C3).\n");
  return 0;
}
