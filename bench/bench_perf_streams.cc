// P4 — stream-substrate microbenchmarks: generator throughput, noise
// injection, trace IO, and resampling. These bound how fast the
// experiment harness itself can feed the system under test.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "streams/composite.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "streams/resample.h"
#include "streams/trace.h"

namespace {

void BM_RandomWalkNext(benchmark::State& state) {
  kc::RandomWalkGenerator gen(kc::RandomWalkGenerator::Config{});
  gen.Reset(1);
  for (auto _ : state) {
    kc::Sample s = gen.Next();
    benchmark::DoNotOptimize(s.truth.value.data().data());
  }
}
BENCHMARK(BM_RandomWalkNext);

void BM_Vehicle2DNext(benchmark::State& state) {
  kc::Vehicle2DGenerator gen(kc::Vehicle2DGenerator::Config{});
  gen.Reset(1);
  for (auto _ : state) {
    kc::Sample s = gen.Next();
    benchmark::DoNotOptimize(s.truth.value.data().data());
  }
}
BENCHMARK(BM_Vehicle2DNext);

void BM_BurstyTrafficNext(benchmark::State& state) {
  kc::BurstyTrafficGenerator gen(kc::BurstyTrafficGenerator::Config{});
  gen.Reset(1);
  for (auto _ : state) {
    kc::Sample s = gen.Next();
    benchmark::DoNotOptimize(s.truth.value.data().data());
  }
}
BENCHMARK(BM_BurstyTrafficNext);

void BM_NoisyStreamNext(benchmark::State& state) {
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 0.5;
  noise.outlier_prob = 0.01;
  kc::NoisyStream gen(
      std::make_unique<kc::RandomWalkGenerator>(kc::RandomWalkGenerator::Config{}),
      noise);
  gen.Reset(1);
  for (auto _ : state) {
    kc::Sample s = gen.Next();
    benchmark::DoNotOptimize(s.measured.value.data().data());
  }
}
BENCHMARK(BM_NoisyStreamNext);

void BM_SumGeneratorNext(benchmark::State& state) {
  std::vector<std::unique_ptr<kc::StreamGenerator>> parts;
  parts.push_back(std::make_unique<kc::RandomWalkGenerator>(
      kc::RandomWalkGenerator::Config{}));
  parts.push_back(
      std::make_unique<kc::SinusoidGenerator>(kc::SinusoidGenerator::Config{}));
  kc::SumGenerator gen(std::move(parts), "combo");
  gen.Reset(1);
  for (auto _ : state) {
    kc::Sample s = gen.Next();
    benchmark::DoNotOptimize(s.truth.value.data().data());
  }
}
BENCHMARK(BM_SumGeneratorNext);

void BM_TraceSaveLoad(benchmark::State& state) {
  kc::RandomWalkGenerator gen(kc::RandomWalkGenerator::Config{});
  auto trace = kc::Materialize(gen, 1000, 7);
  const std::string path = "/tmp/kc_bench_trace.csv";
  for (auto _ : state) {
    benchmark::DoNotOptimize(kc::SaveTraceCsv(path, trace).ok());
    auto loaded = kc::LoadTraceCsv(path);
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  std::remove(path.c_str());
}
BENCHMARK(BM_TraceSaveLoad);

void BM_Resample(benchmark::State& state) {
  kc::RandomWalkGenerator gen(kc::RandomWalkGenerator::Config{});
  auto trace = kc::Materialize(gen, 10000, 7);
  for (auto _ : state) {
    auto out = kc::ResampleTrace(trace, 0.5);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_Resample);

}  // namespace
