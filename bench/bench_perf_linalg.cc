// P1 — linalg microbenchmarks: the dense kernels under every filter step.
// Validates the DESIGN.md assumption that small-matrix math is not the
// bottleneck at Kalman state dimensions (n <= 8).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "linalg/decomp.h"
#include "linalg/matrix.h"

namespace {

kc::Matrix RandomMatrix(size_t n, uint64_t seed) {
  kc::Rng rng(seed);
  kc::Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m(r, c) = rng.Gaussian();
  }
  return m;
}

kc::Matrix RandomSpd(size_t n, uint64_t seed) {
  kc::Matrix b = RandomMatrix(n, seed);
  kc::Matrix a = b * b.Transposed() +
                 kc::Matrix::ScalarDiagonal(n, static_cast<double>(n));
  a.Symmetrize();
  return a;
}

void BM_MatrixMultiply(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  kc::Matrix a = RandomMatrix(n, 1);
  kc::Matrix b = RandomMatrix(n, 2);
  for (auto _ : state) {
    kc::Matrix c = a * b;
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MatrixMultiply)->Arg(2)->Arg(4)->Arg(8);

void BM_Sandwich(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  kc::Matrix f = RandomMatrix(n, 3);
  kc::Matrix p = RandomSpd(n, 4);
  for (auto _ : state) {
    kc::Matrix c = kc::Sandwich(f, p);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_Sandwich)->Arg(2)->Arg(4)->Arg(8);

void BM_Cholesky(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  kc::Matrix a = RandomSpd(n, 5);
  for (auto _ : state) {
    kc::Cholesky chol(a);
    benchmark::DoNotOptimize(chol.ok());
  }
}
BENCHMARK(BM_Cholesky)->Arg(2)->Arg(4)->Arg(8);

void BM_CholeskySolve(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  kc::Matrix a = RandomSpd(n, 6);
  kc::Cholesky chol(a);
  kc::Vector b(n);
  for (size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) + 1.0;
  for (auto _ : state) {
    kc::Vector x = chol.Solve(b);
    benchmark::DoNotOptimize(x.data().data());
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(2)->Arg(4)->Arg(8);

void BM_LuSolve(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  kc::Matrix a = RandomMatrix(n, 7) + kc::Matrix::ScalarDiagonal(n, 4.0);
  kc::Vector b(n);
  for (size_t i = 0; i < n; ++i) b[i] = 1.0;
  for (auto _ : state) {
    kc::PartialPivLu lu(a);
    kc::Vector x = lu.Solve(b);
    benchmark::DoNotOptimize(x.data().data());
  }
}
BENCHMARK(BM_LuSolve)->Arg(2)->Arg(4)->Arg(8);

void BM_MatrixVector(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  kc::Matrix a = RandomMatrix(n, 8);
  kc::Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 1.0;
  for (auto _ : state) {
    kc::Vector out = a * v;
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_MatrixVector)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
