// E11 — Table "delivery latency and loss" (extension): the protocol on an
// imperfect network. Latency opens a transit window during which the
// server's view lags (bounded by delta + latency * stream motion); loss
// desynchronizes replicas until the next correction, which periodic
// FULL_SYNC upgrades repair.

#include <cstdio>
#include <memory>

#include "common.h"
#include "streams/generators.h"
#include "suppression/policies.h"

namespace {

kc::LinkReport RunNetwork(int64_t latency, double loss, int64_t full_sync_every,
                          kc::KalmanPredictor::SyncMode mode =
                              kc::KalmanPredictor::SyncMode::kState,
                          bool low_gain = false) {
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.3;
  kc::RandomWalkGenerator stream(walk);
  kc::KalmanPredictor::Config kf;
  // Low gain (R >> Q) means each delivered correction only removes ~10%
  // of any replica divergence, making loss damage persistent.
  kf.model = low_gain ? kc::MakeRandomWalkModel(0.01, 1.0)
                      : kc::MakeRandomWalkModel(0.09, 0.04);
  kf.sync_mode = mode;
  kc::KalmanPredictor proto(kf);
  kc::LinkConfig config;
  config.ticks = 20000;
  config.delta = 1.0;
  config.seed = 53;
  config.channel.latency_ticks = latency;
  config.channel.loss_prob = loss;
  config.agent.full_sync_every = full_sync_every;
  return kc::RunLink(stream, proto, config);
}

void PrintRow(const char* label, const kc::LinkReport& r) {
  std::printf("%-28s %10lld %12.3f %12.3f %14lld\n", label,
              static_cast<long long>(r.messages), r.err_vs_target.mean(),
              r.err_vs_target.max(),
              static_cast<long long>(r.contract_violations));
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E11 | Imperfect networks: latency and loss (extension)",
      "random walk sigma=0.3, kalman policy, delta=1.0, 20000 readings");
  std::printf("%-28s %10s %12s %12s %14s\n", "network", "messages",
              "mean err", "max err", "violations");

  std::printf("-- latency (state-sync kalman) --\n");
  PrintRow("ideal (0 lat, 0 loss)", RunNetwork(0, 0.0, 0));
  PrintRow("latency 2 ticks", RunNetwork(2, 0.0, 0));
  PrintRow("latency 5 ticks", RunNetwork(5, 0.0, 0));
  PrintRow("latency 10 ticks", RunNetwork(10, 0.0, 0));

  std::printf("-- loss: state-sync corrections are self-healing --\n");
  PrintRow("state-sync, loss 5%", RunNetwork(0, 0.05, 0));

  using SyncMode = kc::KalmanPredictor::SyncMode;
  std::printf("-- loss: measurement-sync needs FULL_SYNC repair --\n");
  PrintRow("meas-sync, loss 0%",
           RunNetwork(0, 0.0, 0, SyncMode::kMeasurement));
  PrintRow("meas-sync, loss 5%",
           RunNetwork(0, 0.05, 0, SyncMode::kMeasurement));
  PrintRow("meas-sync, loss 5% + sync 3",
           RunNetwork(0, 0.05, 3, SyncMode::kMeasurement));
  PrintRow("meas low-gain, loss 5%",
           RunNetwork(0, 0.05, 0, SyncMode::kMeasurement, true));
  PrintRow("meas low-gain, loss5%+sync3",
           RunNetwork(0, 0.05, 3, SyncMode::kMeasurement, true));

  std::printf(
      "\nExpected shape: the message count barely moves (the source's "
      "decisions don't\ndepend on the network), while errors grow with "
      "latency — the transit window\nduring which the server lags. Under "
      "loss, the default state-sync protocol\nself-heals: every correction "
      "carries the complete predictor state, so one\ndelivered message "
      "restores the replica exactly. Measurement-sync corrections\nare "
      "incremental; with a high-gain filter each delivered correction still "
      "erases\nmost divergence, and with a low-gain (smoothing) filter a "
      "lost correction's\ndamage persists for ~1/gain messages — there the "
      "periodic FULL_SYNC upgrade\ntrims the violation window (~10%% fewer "
      "violating ticks at sync-every-3). The\nbigger lesson is that the "
      "protocol family is inherently loss-tolerant: every\nvariant re-bounds "
      "its error within a handful of delivered messages. The paper\nassumes "
      "reliable transport; this table quantifies that assumption.\n");
  return 0;
}
