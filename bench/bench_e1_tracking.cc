// E1 — Figure "tracking": the Kalman filter tracks noisy, time-varying
// streams (claims C2/C3, qualitative basis for everything else).
//
// For each stream family and sensor-noise level, reports the RMSE of the
// client-side Kalman estimate against ground truth next to the raw
// sensor's RMSE. The filter must beat the sensor whenever there is noise
// to remove, and track closely (low absolute RMSE) when there is not.

#include <cstdio>
#include <memory>

#include "common.h"
#include "common/stats.h"
#include "kalman/adaptive.h"
#include "kalman/kalman_filter.h"
#include "streams/generators.h"
#include "streams/noise.h"

namespace {

struct Row {
  std::string stream;
  double noise_sigma;
  double raw_rmse;
  double filter_rmse;
};

Row TrackOne(const std::string& family, double noise_sigma, uint64_t seed) {
  using namespace kc;
  std::unique_ptr<StreamGenerator> truth_gen;
  if (family == "random_walk") {
    RandomWalkGenerator::Config config;
    config.step_sigma = 0.3;
    truth_gen = std::make_unique<RandomWalkGenerator>(config);
  } else if (family == "sinusoid") {
    SinusoidGenerator::Config config;
    config.amplitude = 5.0;
    config.period = 200.0;
    truth_gen = std::make_unique<SinusoidGenerator>(config);
  } else {
    RegimeSwitchingGenerator::Config config;
    config.regimes = {{2000, 0.1, 0.0}, {2000, 1.0, 0.0}};
    truth_gen = std::make_unique<RegimeSwitchingGenerator>(config);
  }
  NoiseConfig noise;
  noise.gaussian_sigma = noise_sigma;
  NoisyStream stream(std::move(truth_gen), noise);
  stream.Reset(seed);

  // An adaptive random-walk filter, deliberately generic: the point of the
  // paper's choice of the KF is that one framework adapts everywhere.
  KalmanFilter kf(MakeRandomWalkModel(0.09, std::max(noise_sigma, 0.05) *
                                                std::max(noise_sigma, 0.05)),
                  Vector{0.0}, Matrix{{100.0}});
  AdaptiveNoiseEstimator adaptive;

  RunningStats raw_err, filter_err;
  for (int i = 0; i < 8000; ++i) {
    Sample s = stream.Next();
    kf.Predict();
    if (!kf.Update(s.measured.value).ok()) continue;
    adaptive.AfterUpdate(kf);
    if (i < 100) continue;  // Skip convergence transient.
    raw_err.Add(s.measured.scalar() - s.truth.scalar());
    filter_err.Add(kf.state()[0] - s.truth.scalar());
  }
  return {family, noise_sigma, raw_err.rms(), filter_err.rms()};
}

}  // namespace

int main() {
  kc::bench::PrintHeader(
      "E1 | Kalman tracking quality on noisy, time-varying streams",
      "RMSE vs ground truth of the adaptive KF estimate and the raw sensor "
      "(8000 ticks)");
  std::printf("%-16s %12s %12s %14s %10s\n", "stream", "noise sigma",
              "raw rmse", "filter rmse", "gain");
  for (const char* family : {"random_walk", "sinusoid", "regime_switch"}) {
    for (double sigma : {0.1, 0.5, 1.0, 2.0}) {
      Row row = TrackOne(family, sigma, 11);
      std::printf("%-16s %12.2f %12.3f %14.3f %9.2fx\n", row.stream.c_str(),
                  row.noise_sigma, row.raw_rmse, row.filter_rmse,
                  row.raw_rmse / std::max(row.filter_rmse, 1e-9));
    }
  }
  std::printf("\nExpected shape: at negligible noise the filter matches the "
              "sensor (nothing to\nremove); from sigma=0.5 up it tracks "
              "truth increasingly better than the raw\nreadings, with the "
              "gain growing with noise (claims C2/C3).\n");
  return 0;
}
