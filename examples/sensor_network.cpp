// Sensor network: 100 temperature sensors feeding one stream server that
// answers continuous aggregate queries written in the query language.
//
// Demonstrates the multi-source deployment surface: the sharded fleet
// executor (pass --threads=N to spread shards over N worker threads —
// the reported numbers are identical for every N), StreamServer, the CQL
// parser, per-query error budgets, bound allocation across aggregate
// members, and three-valued threshold triggers.
//
// Pass --metrics-dump[=text|json|prom|all] to print the fleet's merged
// telemetry after the run. Every mode except `all` excludes wall-clock
// timings, so the dump (like the rest of the output) is byte-identical
// for any --threads value.
//
// Pass --faults=... to degrade every sensor's uplink and watch the
// loss-tolerant recovery protocol fight back (heartbeats, resync
// requests over the control downlink, quarantined bounds). Spec is a
// comma list of:
//   loss=P                  independent per-message loss
//   burst=ENTER:EXIT:LOSS   Gilbert-Elliott burst loss
//   dup=P                   duplication
//   reorder=P:MAX           reordering (extra delay 1..MAX ticks)
//   partition=START:LEN[:EVERY]  scheduled blackout window(s)
// e.g. --faults=burst=0.03:0.25:1.0,dup=0.05
// Faults stay deterministic per (seed, sensor), so the simulated numbers
// are still identical for every --threads value.
//
// Observability extras (all deterministic for any --threads):
//   --flight-recorder[=N]  per-sensor black-box ring of N protocol events
//                          (default 128); sensors that end the run in a
//                          non-OK health state get their ring dumped.
//   --health               filter-health watchdog; prints the per-sensor
//                          verdict table after the run.
//   --trace-export=FILE    record trace spans and write a Chrome-trace /
//                          Perfetto JSON file (load via chrome://tracing
//                          or https://ui.perfetto.dev). Causal flow ids
//                          stitch each agent send to its replica apply.
//   --audit[=N]            precision/SLO auditor: every N ticks (default
//                          4) each sensor's replica answer is checked
//                          against the agent's contract target; prints
//                          the containment/budget report after the run.
//   --timeseries[=K]       windowed metric time-series, one capture per K
//                          ticks (default 64); prints the series table
//                          after the run. Implies metrics.
//   --http-port=P          scrapeable telemetry endpoint on
//                          127.0.0.1:P (/metrics /healthz /audit
//                          /timeseries). Implies metrics.
//   --serve-seconds=S      keep the HTTP endpoint up S seconds after the
//                          run (so you can curl the final state).
//
// Split-process deployment (docs/PROTOCOL.md, "Split-process deployment"):
//   --listen=PORT          run the stream-server half over real sockets
//                          (UDP uplink + TCP control on PORT); serves one
//                          client, prints its delivery books, exits.
//   --connect=HOST:PORT    run the sensor-fleet half against a listening
//                          server; prints its send books on exit.
//   --telemetry[=N]        distributed telemetry plane, one snapshot per N
//                          ticks (default 32). In split mode the client
//                          ships metric/trace/send-log snapshots over the
//                          control stream and the server merges them into
//                          kc.remote.client.* rows (plus clock-offset and
//                          one-way wire-latency tracking); in simulated
//                          mode the fleet self-merges through the same
//                          codec path. Combine with --http-port on the
//                          split server for a one-scrape view of both
//                          processes, and with --trace-export for a
//                          stitched cross-process trace.
//   --ticks=N              override the run length (default 2880).
//   --net-stats            after a simulated run, print the same
//                          normalized "uplink sent/delivered" book lines
//                          the split halves print — identical strings
//                          mean the socket transport charged exactly the
//                          bytes the simulation predicts (pinned by
//                          scripts/ci_asan.sh).
// Both halves rebuild the identical workload (sensor configs, volatility
// probes, variance-proportional bounds) from the same seeds, so no
// configuration travels out of band.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fleet/sharded_fleet.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "server/allocation.h"
#include "server/split_deploy.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace {

std::unique_ptr<kc::StreamGenerator> MakeSensor(kc::Rng& rng) {
  kc::DiurnalTemperatureGenerator::Config config;
  config.mean = rng.Uniform(14.0, 24.0);        // Different rooms...
  config.daily_amplitude = rng.Uniform(3.0, 8.0);
  config.weather_sigma = rng.Uniform(0.01, 0.08);
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 0.3;  // Cheap thermistors.
  return std::make_unique<kc::NoisyStream>(
      std::make_unique<kc::DiurnalTemperatureGenerator>(config), noise);
}

// Parses the --faults= spec into the fleet's channel config. Returns
// false (after complaining) on a malformed token.
bool ParseFaults(const char* spec, kc::ShardedFleet::Config* config) {
  std::string s(spec);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    std::string tok = s.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? s.size() : comma + 1;
    kc::FaultConfig& f = config->channel.faults;
    double a = 0.0, b = 0.0, c = 0.0;
    long x = 0, y = 0, z = 0;
    if (std::sscanf(tok.c_str(), "loss=%lf", &a) == 1) {
      config->channel.loss_prob = a;
    } else if (std::sscanf(tok.c_str(), "burst=%lf:%lf:%lf", &a, &b, &c) ==
               3) {
      f.burst_enter_prob = a;
      f.burst_exit_prob = b;
      f.burst_loss_prob = c;
    } else if (std::sscanf(tok.c_str(), "dup=%lf", &a) == 1) {
      f.duplicate_prob = a;
    } else if (std::sscanf(tok.c_str(), "reorder=%lf:%ld", &a, &x) == 2) {
      f.reorder_prob = a;
      f.reorder_max_ticks = x;
    } else if (std::sscanf(tok.c_str(), "partition=%ld:%ld:%ld", &x, &y,
                           &z) == 3) {
      f.partition_start = x;
      f.partition_length = y;
      f.partition_every = z;
    } else if (std::sscanf(tok.c_str(), "partition=%ld:%ld", &x, &y) == 2) {
      f.partition_start = x;
      f.partition_length = y;
    } else {
      std::fprintf(stderr, "unrecognized --faults token: %s\n", tok.c_str());
      return false;
    }
  }
  return true;
}

// The workload both deployment shapes (simulated fleet, split processes)
// reconstruct from seeds alone: the sensor prototypes and the
// variance-proportional precision bounds.
struct Workload {
  std::vector<std::unique_ptr<kc::StreamGenerator>> sensors;
  std::vector<double> deltas;
};

Workload BuildWorkload(int num_sensors, double avg_budget) {
  kc::Rng rng(2026);
  Workload w;
  std::vector<double> volatilities;
  for (int i = 0; i < num_sensors; ++i) {
    auto gen = MakeSensor(rng);
    // Peek one day to estimate per-tick volatility for allocation.
    auto probe = gen->Clone();
    probe->Reset(1000 + static_cast<uint64_t>(i));
    double prev = probe->Next().measured.scalar();
    kc::RunningStats deltas;
    for (int t = 1; t < 288; ++t) {
      double v = probe->Next().measured.scalar();
      deltas.Add(v - prev);
      prev = v;
    }
    volatilities.push_back(deltas.stddev());
    w.sensors.push_back(std::move(gen));
  }
  // Budget: the building-wide average must be accurate to avg_budget
  // degrees; the sum budget splits across members by volatility.
  w.deltas = kc::AllocateBounds(kc::AllocationPolicy::kVarianceProportional,
                                avg_budget * num_sensors, volatilities);
  return w;
}

// One half of the split-process deployment. Runs the server when
// `listen` is set, the client otherwise; either way the workload is
// rebuilt locally so both processes agree by construction.
int RunSplitMode(bool listen, const std::string& host, int port, size_t ticks,
                 int num_sensors, double avg_budget, long telemetry_every,
                 int http_port, long serve_seconds, const char* trace_file) {
  Workload w = BuildWorkload(num_sensors, avg_budget);
  kc::SplitConfig config;
  config.host = host;
  config.port = port;
  config.ticks = ticks;
  config.num_sources = num_sensors;
  config.seed = 1;  // == ShardedFleet::Config default, so streams match.
  config.deltas = w.deltas;
  config.telemetry_every = telemetry_every;
  config.trace = trace_file != nullptr;
  auto make_predictor = [](int32_t) {
    return kc::MakeDefaultKalmanPredictor(0.01, 0.09);
  };

  if (listen) {
    config.http_port = http_port;
    config.serve_seconds = static_cast<int>(serve_seconds);
    config.on_http_ready = [](int bound_port) {
      std::printf("telemetry: http://127.0.0.1:%d/metrics (also /healthz "
                  "/audit /timeseries)\n",
                  bound_port);
      std::fflush(stdout);  // Scrapers watch the pipe while we serve.
    };
    std::printf("split server: listening on %s:%d (UDP uplink + TCP "
                "control), %d sensors, %zu ticks\n",
                host.c_str(), port, num_sensors, ticks);
    auto report = kc::RunSplitServer(config, make_predictor);
    if (!report.ok()) {
      std::fprintf(stderr, "split server: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("split server: %lld tick barriers, %d/%d replicas "
                "initialized, %lld malformed frames, %lld resyncs "
                "requested, mean answer %.3f\n",
                static_cast<long long>(report->ticks), report->initialized,
                num_sensors, static_cast<long long>(report->frames_rejected),
                static_cast<long long>(report->resyncs_requested),
                report->mean_value);
    std::printf("uplink delivered: %s\n",
                report->uplink.DeliveredLine().c_str());
    if (telemetry_every > 0) {
      std::printf("telemetry: %lld snapshots merged, wire latency %lld "
                  "matched / %lld unmatched, clock offset %+.1fus "
                  "(+/-%.1fus), %zu remote black boxes\n",
                  static_cast<long long>(report->snapshots_merged),
                  static_cast<long long>(report->latency_matched),
                  static_cast<long long>(report->latency_unmatched),
                  static_cast<double>(report->clock_offset_ns) / 1000.0,
                  report->clock_uncertainty_ns < 0
                      ? -1.0
                      : static_cast<double>(report->clock_uncertainty_ns) /
                            1000.0,
                  report->remote_black_boxes.size());
      for (const std::string& dump : report->remote_black_boxes) {
        std::printf("-- remote black box --\n%s", dump.c_str());
      }
    }
    if (trace_file != nullptr && !report->trace_json.empty()) {
      FILE* f = std::fopen(trace_file, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", trace_file);
        return 1;
      }
      std::fwrite(report->trace_json.data(), 1, report->trace_json.size(), f);
      std::fclose(f);
      std::printf("trace: stitched cross-process trace -> %s "
                  "(chrome://tracing or ui.perfetto.dev)\n",
                  trace_file);
    }
    return 0;
  }

  auto make_generator = [&w](int32_t id) {
    return w.sensors[static_cast<size_t>(id)]->Clone();
  };
  std::printf("split client: connecting to %s:%d, %d sensors, %zu ticks\n",
              host.c_str(), port, num_sensors, ticks);
  auto report = kc::RunSplitClient(config, make_generator, make_predictor);
  if (!report.ok()) {
    std::fprintf(stderr, "split client: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("split client: %lld ticks, %lld corrections, %lld suppressed "
              "(%.4f suppression), %lld resyncs served\n",
              static_cast<long long>(report->ticks),
              static_cast<long long>(report->corrections),
              static_cast<long long>(report->suppressed),
              report->suppression_ratio,
              static_cast<long long>(report->resyncs_served));
  std::printf("uplink sent: %s\n", report->uplink.SentLine().c_str());
  if (telemetry_every > 0) {
    std::printf("telemetry: %lld snapshots sent, %lld clock samples, offset "
                "%+.1fus (+/-%.1fus), %lld black-box dumps served\n",
                static_cast<long long>(report->snapshots_sent),
                static_cast<long long>(report->clock_samples),
                static_cast<double>(report->clock_offset_ns) / 1000.0,
                report->clock_uncertainty_ns < 0
                    ? -1.0
                    : static_cast<double>(report->clock_uncertainty_ns) /
                          1000.0,
                static_cast<long long>(report->blackbox_dumps_served));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kSensors = 100;
  size_t ticks = 2880;  // 10 days of 5-minute samples.
  constexpr double kAvgBudget = 0.25;

  kc::ShardedFleet::Config fleet_config;
  bool metrics_dump = false;
  size_t flight_recorder_capacity = 0;
  bool health_enabled = false;
  const char* trace_file = nullptr;
  long audit_every = 0;       // 0 = auditing off.
  long timeseries_every = 0;  // 0 = time-series off.
  long telemetry_every = 0;   // 0 = distributed telemetry plane off.
  int http_port = -1;         // -1 = endpoint off (0 = ephemeral port).
  long serve_seconds = 0;
  int listen_port = -1;          // >= 0 = split-server role.
  std::string connect_spec;      // non-empty = split-client role.
  bool net_stats = false;
  kc::obs::ExportOptions dump_options;
  dump_options.include_wall_clock = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      long v = std::atol(argv[i] + 10);
      if (v > 0) fleet_config.threads = static_cast<size_t>(v);
    } else if (std::strncmp(argv[i], "--metrics-dump", 14) == 0) {
      metrics_dump = true;
      const char* mode = argv[i][14] == '=' ? argv[i] + 15 : "text";
      if (std::strcmp(mode, "json") == 0) {
        dump_options.format = kc::obs::ExportFormat::kJsonLines;
      } else if (std::strcmp(mode, "prom") == 0) {
        dump_options.format = kc::obs::ExportFormat::kPrometheus;
      } else if (std::strcmp(mode, "all") == 0) {
        dump_options.include_wall_clock = true;  // Run-dependent timings.
      }
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      if (!ParseFaults(argv[i] + 9, &fleet_config)) return 1;
    } else if (std::strncmp(argv[i], "--flight-recorder", 17) == 0) {
      flight_recorder_capacity = kc::obs::FlightRecorder::kDefaultCapacity;
      if (argv[i][17] == '=') {
        long v = std::atol(argv[i] + 18);
        if (v > 0) flight_recorder_capacity = static_cast<size_t>(v);
      }
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health_enabled = true;
    } else if (std::strncmp(argv[i], "--trace-export=", 15) == 0) {
      trace_file = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--audit", 7) == 0) {
      audit_every = 4;
      if (argv[i][7] == '=') {
        long v = std::atol(argv[i] + 8);
        if (v > 0) audit_every = v;
      }
    } else if (std::strncmp(argv[i], "--timeseries", 12) == 0) {
      timeseries_every = 64;
      if (argv[i][12] == '=') {
        long v = std::atol(argv[i] + 13);
        if (v > 0) timeseries_every = v;
      }
    } else if (std::strncmp(argv[i], "--telemetry", 11) == 0) {
      telemetry_every = 32;
      if (argv[i][11] == '=') {
        long v = std::atol(argv[i] + 12);
        if (v > 0) telemetry_every = v;
      }
    } else if (std::strncmp(argv[i], "--http-port=", 12) == 0) {
      http_port = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      serve_seconds = std::atol(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--listen=", 9) == 0) {
      listen_port = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--connect=", 10) == 0) {
      connect_spec = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--ticks=", 8) == 0) {
      long v = std::atol(argv[i] + 8);
      if (v > 0) ticks = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--net-stats") == 0) {
      net_stats = true;
    }
  }
  if (listen_port >= 0) {
    return RunSplitMode(/*listen=*/true, "127.0.0.1", listen_port, ticks,
                        kSensors, kAvgBudget, telemetry_every, http_port,
                        serve_seconds, trace_file);
  }
  if (!connect_spec.empty()) {
    std::string host = "127.0.0.1";
    int port;
    size_t colon = connect_spec.rfind(':');
    if (colon != std::string::npos) {
      host = connect_spec.substr(0, colon);
      port = std::atoi(connect_spec.c_str() + colon + 1);
    } else {
      port = std::atoi(connect_spec.c_str());  // Bare port: localhost.
    }
    if (port <= 0) {
      std::fprintf(stderr, "--connect wants HOST:PORT, got %s\n",
                   connect_spec.c_str());
      return 1;
    }
    return RunSplitMode(/*listen=*/false, host, port, ticks, kSensors,
                        kAvgBudget, telemetry_every, /*http_port=*/-1,
                        /*serve_seconds=*/0, trace_file);
  }
  const bool faulty = fleet_config.channel.faults.any_enabled() ||
                      fleet_config.channel.loss_prob > 0.0;
  if (faulty) {
    // A lossy uplink needs the recovery protocol: heartbeats so silence
    // is distinguishable from loss, and resync-on-desync so replica
    // bounds stay honest instead of silently wrong.
    fleet_config.agent_base.heartbeat_every = 4;
    fleet_config.recovery.enabled = true;
    fleet_config.recovery.suspect_after_silent_ticks = 12;
  }
  kc::ShardedFleet fleet(fleet_config);
  if (metrics_dump) fleet.EnableMetrics();
  if (flight_recorder_capacity > 0) {
    fleet.EnableFlightRecorder(flight_recorder_capacity);
  }
  if (health_enabled) fleet.EnableHealth();
  if (audit_every > 0) {
    kc::obs::AuditConfig audit_config;
    audit_config.sample_every = audit_every;
    fleet.EnableAudit(audit_config);
  }
  if (timeseries_every > 0) fleet.EnableTimeseries(timeseries_every);
  // Simulated-mode telemetry plane: the fleet snapshots itself through the
  // same codec + merger path the split deployment ships over sockets, so
  // the encode/decode/fold surface is exercised without a second process.
  if (telemetry_every > 0) fleet.EnableTelemetryPlane(telemetry_every);
  if (http_port >= 0) {
    kc::Status s = fleet.EnableHttpTelemetry(http_port);
    if (!s.ok()) {
      std::fprintf(stderr, "telemetry endpoint: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("telemetry: http://127.0.0.1:%d/metrics (also /healthz "
                "/audit /timeseries)\n",
                fleet.http()->port());
    std::fflush(stdout);  // Scrapers watch the pipe while we serve.
  }
  if (trace_file != nullptr) kc::obs::SetTracingEnabled(true);

  // Every sensor runs the adaptive dual-Kalman predictor. The AVG query's
  // error budget is split across members with the variance-proportional
  // policy after watching each stream for a probe day (BuildWorkload —
  // shared with the split-process halves so every deployment shape runs
  // the identical fleet).
  Workload workload = BuildWorkload(kSensors, kAvgBudget);
  for (int i = 0; i < kSensors; ++i) {
    fleet.AddSource(std::move(workload.sensors[static_cast<size_t>(i)]),
                    kc::MakeDefaultKalmanPredictor(0.01, 0.09),
                    /*delta=*/0.5);
  }
  for (int i = 0; i < kSensors; ++i) {
    fleet.SetDelta(i, workload.deltas[static_cast<size_t>(i)]);
  }

  // Register queries through the query language.
  std::vector<int32_t> all;
  std::string all_list;
  for (int i = 0; i < kSensors; ++i) {
    all.push_back(i);
    all_list += (i ? "," : "") + std::string("s") + std::to_string(i);
  }
  auto avg_spec =
      kc::ParseQuery("SELECT AVG(" + all_list + ") WITHIN 0.25 EVERY 12");
  auto max_spec =
      kc::ParseQuery("SELECT MAX(s0,s1,s2,s3,s4) WHEN > 26 WITHIN 1.0");
  if (!avg_spec.ok() || !max_spec.ok()) {
    std::fprintf(stderr, "query parse error: %s / %s\n",
                 avg_spec.status().ToString().c_str(),
                 max_spec.status().ToString().c_str());
    return 1;
  }
  if (!fleet.server().AddQuery("building_avg", *avg_spec).ok() ||
      !fleet.server().AddQuery("hot_zone", *max_spec).ok()) {
    std::fprintf(stderr, "query registration failed\n");
    return 1;
  }

  std::printf("sensor_network: %d diurnal sensors, %zu ticks, AVG budget "
              "+/-%.2fC (variance-proportional split), %zu shards / %zu "
              "threads\n\n",
              kSensors, ticks, kAvgBudget, fleet.num_shards(),
              fleet.threads());
  std::printf("%8s %14s %10s %22s %16s\n", "tick", "building_avg", "bound",
              "true_avg (err)", "hot_zone trigger");

  kc::RunningStats avg_err;
  for (size_t t = 0; t < ticks; ++t) {
    if (!fleet.Step().ok()) {
      std::fprintf(stderr, "simulation error at tick %zu\n", t);
      return 1;
    }
    if ((t + 1) % 288 != 0) continue;  // Report once per simulated day.

    auto avg = fleet.server().Evaluate("building_avg");
    auto hot = fleet.server().Evaluate("hot_zone");
    if (!avg.ok() || !hot.ok()) continue;
    double true_avg = 0.0;
    for (int i = 0; i < kSensors; ++i) true_avg += fleet.TruthOf(i);
    true_avg /= kSensors;
    double err = avg->value - true_avg;
    avg_err.Add(err);
    std::printf("%8zu %14.3f %10.3f %14.3f (%+.3f) %16s\n", t + 1, avg->value,
                avg->bound, true_avg, err,
                kc::TriggerStateName(*hot->trigger));
  }

  long long messages = fleet.TotalMessages();
  double per_sensor_rate = static_cast<double>(messages) /
                           (static_cast<double>(kSensors) * static_cast<double>(ticks));
  std::printf("\ntotal messages: %lld (%.4f per sensor-tick; naive streaming "
              "would be 1.0)\nworst daily AVG error: %.3fC against a "
              "guaranteed bound of %.3fC\n",
              messages, per_sensor_rate,
              std::max(std::fabs(avg_err.min()), std::fabs(avg_err.max())),
              kAvgBudget);

  if (net_stats) {
    // The same normalized book lines the split-process halves print:
    // byte-for-byte identical output here and there means the socket
    // transport and the simulated channel charge identical books for the
    // identical workload (the parity contract in docs/PROTOCOL.md).
    kc::NetworkStats net = fleet.TotalNetworkStats();
    std::printf("\nuplink sent: %s\nuplink delivered: %s\n",
                net.SentLine().c_str(), net.DeliveredLine().c_str());
  }

  if (faulty) {
    kc::NetworkStats net = fleet.TotalNetworkStats();
    std::printf("\nfault injection: %lld dropped (%lld burst, %lld "
                "partition), %lld duplicated, %lld reordered; %lld control "
                "msgs (resync requests + bound pushes)\n",
                static_cast<long long>(net.messages_dropped),
                static_cast<long long>(net.burst_drops),
                static_cast<long long>(net.partition_drops),
                static_cast<long long>(net.messages_duplicated),
                static_cast<long long>(net.messages_reordered),
                static_cast<long long>(fleet.TotalControlMessages()));
  }

  if (health_enabled) {
    int suspect = 0;
    int diverged = 0;
    for (int i = 0; i < kSensors; ++i) {
      kc::obs::HealthState s = fleet.HealthOf(i);
      if (s == kc::obs::HealthState::kSuspect) ++suspect;
      if (s == kc::obs::HealthState::kDiverged) ++diverged;
    }
    std::printf("\n-- filter health: %d OK, %d SUSPECT, %d DIVERGED --\n%s",
                kSensors - suspect - diverged, suspect, diverged,
                fleet.HealthSummaryText().c_str());
    if (flight_recorder_capacity > 0 && suspect + diverged > 0) {
      // The black box earns its keep: dump the ring of every sensor the
      // watchdog flagged, so the operator sees the decisions that led
      // there without re-running anything.
      std::printf("\n-- black boxes of flagged sensors --\n");
      for (int32_t i = 0; i < kSensors; ++i) {
        if (fleet.HealthOf(i) == kc::obs::HealthState::kOk) continue;
        const kc::obs::FlightRecorder* recorder =
            fleet.server().shard_recorder(fleet.server().ShardOf(i));
        std::printf("%s", recorder->DumpText(i).c_str());
      }
    }
  }

  if (audit_every > 0) {
    std::printf("\n-- precision audit (every %ld ticks) --\n%s", audit_every,
                fleet.AuditReportText().c_str());
  }

  if (timeseries_every > 0) {
    std::printf("\n-- time-series (1 capture / %ld ticks) --\n%s",
                timeseries_every, fleet.timeseries()->ExportText().c_str());
  }

  if (metrics_dump) {
    kc::obs::MetricRegistry merged;
    fleet.MergeMetricsInto(&merged);
    std::printf("\n-- metrics --\n%s",
                kc::obs::ExportMetrics(merged, dump_options).c_str());
  }

  if (http_port >= 0 && serve_seconds > 0) {
    std::printf("\nserving telemetry for %lds on http://127.0.0.1:%d ...\n",
                serve_seconds, fleet.http()->port());
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }

  if (trace_file != nullptr) {
    std::vector<kc::obs::TraceEvent> events = kc::obs::CollectTraceEvents();
    std::string json = kc::obs::ExportChromeTrace(events);
    FILE* f = std::fopen(trace_file, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_file);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\ntrace: %zu spans -> %s (chrome://tracing or "
                "ui.perfetto.dev)\n",
                events.size(), trace_file);
  }
  return 0;
}
