// Vehicle tracking: a fleet of GPS-reporting vehicles tracked by the
// server with a 2-D constant-velocity dual Kalman filter.
//
// Demonstrates multi-dimensional streams, model choice (CV vs random walk),
// and the bandwidth saving on trajectory data — the paper's moving-object
// use case. Each vehicle only transmits when the server's dead-reckoned
// position estimate would drift more than `delta` meters from the
// on-vehicle filtered fix.

#include <cmath>
#include <cstdio>
#include <memory>

#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

namespace {

std::unique_ptr<kc::StreamGenerator> MakeVehicle(uint64_t seed) {
  kc::Vehicle2DGenerator::Config config;
  config.speed_mean = 12.0;      // ~43 km/h city driving, 1 Hz fixes.
  config.turn_change_prob = 0.02;
  config.seed = seed;
  kc::NoiseConfig gps_noise;
  gps_noise.gaussian_sigma = 3.0;  // Consumer GPS.
  return std::make_unique<kc::NoisyStream>(
      std::make_unique<kc::Vehicle2DGenerator>(config), gps_noise);
}

kc::KalmanPredictor::Config CvPredictor() {
  kc::KalmanPredictor::Config config;
  config.model = kc::MakeConstantVelocity2DModel(/*dt=*/1.0,
                                                 /*accel_var=*/0.5,
                                                 /*obs_var=*/9.0);
  config.adaptive = kc::AdaptiveConfig{};
  return config;
}

}  // namespace

int main() {
  constexpr size_t kTicks = 3600;  // One hour at 1 Hz.
  std::printf("vehicle_tracking: 1 Hz GPS (sigma=3m), one hour, per-vehicle "
              "precision bound sweep\n\n");
  std::printf("%10s %16s %16s %18s %18s\n", "delta (m)", "msgs/vehicle",
              "vs naive (%)", "rmse vs truth (m)", "max err vs fix (m)");

  for (double delta : {5.0, 10.0, 25.0, 50.0}) {
    // Average over a few vehicles for stable numbers.
    double msgs = 0.0, rmse = 0.0, max_err = 0.0;
    constexpr int kVehicles = 5;
    for (int v = 0; v < kVehicles; ++v) {
      auto vehicle = MakeVehicle(100 + static_cast<uint64_t>(v));
      kc::KalmanPredictor proto(CvPredictor());
      kc::LinkConfig config;
      config.ticks = kTicks;
      config.delta = delta;
      config.seed = 7 + static_cast<uint64_t>(v);
      kc::LinkReport report = kc::RunLink(*vehicle, proto, config);
      msgs += static_cast<double>(report.messages);
      rmse += report.err_vs_truth.rms();
      max_err = std::max(max_err, report.err_vs_target.max());
    }
    msgs /= kVehicles;
    rmse /= kVehicles;
    std::printf("%10.0f %16.1f %15.1f%% %18.2f %18.2f\n", delta, msgs,
                100.0 * msgs / static_cast<double>(kTicks), rmse, max_err);
  }

  std::printf(
      "\nWith a 25 m bound a vehicle reports a few times per minute instead\n"
      "of every second; the server dead-reckons the gap with the same\n"
      "constant-velocity filter the vehicle used to smooth its GPS fixes.\n");
  return 0;
}
