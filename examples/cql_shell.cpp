// cql_shell: an interactive shell over a live simulated deployment.
//
// Four sources stream into a StreamServer; you drive time and issue
// continuous-query-language statements against the cached predictors.
// Works interactively or piped:
//
//   echo "run 500
//   query SELECT AVG(s0,s1) WITHIN 1
//   sources
//   quit" | ./cql_shell
//
// Commands:
//   run N              advance the whole system N ticks
//   query <CQL>        evaluate an ad-hoc query now
//   add NAME <CQL>     register a named continuous query
//   eval NAME          evaluate a registered query
//   due                evaluate all queries whose EVERY cadence elapsed
//   sources            list sources: value +/- bound, messages, staleness
//   stats              network totals
//   help               this text
//   quit / exit        leave

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "query/parser.h"
#include "server/report.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/imm_policy.h"
#include "suppression/policies.h"

namespace {

std::unique_ptr<kc::Fleet> BuildFleet() {
  kc::Fleet::Config config;
  config.agent_base.heartbeat_every = 50;
  auto fleet = std::make_unique<kc::Fleet>(config);
  fleet->server().EnableArchiving(100000);
  fleet->server().SetStalenessLimit(100);

  // s0: office temperature (noisy diurnal, adaptive KF).
  kc::DiurnalTemperatureGenerator::Config temp;
  kc::NoiseConfig thermistor;
  thermistor.gaussian_sigma = 0.3;
  fleet->AddSource(
      std::make_unique<kc::NoisyStream>(
          std::make_unique<kc::DiurnalTemperatureGenerator>(temp), thermistor),
      kc::MakeDefaultKalmanPredictor(0.01, 0.09), 0.5);

  // s1: server load (regime switching, IMM).
  kc::RegimeSwitchingGenerator::Config load;
  load.start = 30.0;
  load.regimes = {{400, 0.2, 0.0}, {400, 2.0, 0.0}};
  fleet->AddSource(std::make_unique<kc::RegimeSwitchingGenerator>(load),
                   kc::MakeTwoModeImmPredictor(0.04, 4.0, 0.04), 1.0);

  // s2: stock-like random walk (value cache, for contrast).
  kc::RandomWalkGenerator::Config stock;
  stock.start = 100.0;
  stock.step_sigma = 0.4;
  fleet->AddSource(std::make_unique<kc::RandomWalkGenerator>(stock),
                   std::make_unique<kc::ValueCachePredictor>(), 0.5);

  // s3: growing metric (trend, CV-model KF).
  kc::LinearDriftGenerator::Config trend;
  trend.slope = 0.05;
  trend.wobble_sigma = 0.1;
  kc::KalmanPredictor::Config cv;
  cv.model = kc::MakeConstantVelocityModel(1.0, 0.01, 0.04);
  fleet->AddSource(std::make_unique<kc::LinearDriftGenerator>(trend),
                   std::make_unique<kc::KalmanPredictor>(cv), 0.5);
  return fleet;
}

void PrintResult(const kc::QueryResult& r) {
  std::printf("  %s\n", r.ToString().c_str());
}

void PrintSources(kc::Fleet& fleet) {
  for (size_t id = 0; id < fleet.num_sources(); ++id) {
    auto answer = fleet.server().SourceValue(static_cast<int32_t>(id));
    if (!answer.ok()) {
      std::printf("  s%zu: (no data yet)\n", id);
      continue;
    }
    std::printf("  s%zu: %.3f +/- %.3f  (policy %s, msgs %lld%s)\n", id,
                answer->value[0], answer->bound,
                fleet.agent(static_cast<int32_t>(id)).predictor().name().c_str(),
                static_cast<long long>(
                    fleet.MessagesOf(static_cast<int32_t>(id))),
                fleet.server().IsStale(static_cast<int32_t>(id)) ? ", STALE"
                                                                 : "");
  }
}

void Help() {
  std::printf(
      "commands: run N | query <CQL> | add NAME <CQL> | eval NAME | due |\n"
      "          sources | report | stats | help | quit\n"
      "CQL:      SELECT VALUE|SUM|AVG|MIN|MAX(s0[,s1...])\n"
      "          [FROM a TO b | LAST n] [WHEN >|< x] [WITHIN d] [EVERY n]\n");
}

}  // namespace

int main() {
  auto fleet = BuildFleet();
  std::printf("kalmancast CQL shell — 4 sources (s0 temp, s1 load, s2 stock, "
              "s3 growth). 'help' for commands.\n");

  std::string line;
  while (true) {
    std::printf("> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = kc::Trim(line);
    if (trimmed.empty()) continue;

    std::istringstream iss{std::string(trimmed)};
    std::string command;
    iss >> command;

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      Help();
    } else if (command == "run") {
      long n = 0;
      iss >> n;
      if (n <= 0) {
        std::printf("  usage: run N\n");
        continue;
      }
      if (!fleet->Run(static_cast<size_t>(n)).ok()) {
        std::printf("  simulation error\n");
        break;
      }
      std::printf("  advanced %ld ticks (now at %lld); %lld total messages\n",
                  n, static_cast<long long>(fleet->ticks()),
                  static_cast<long long>(fleet->TotalMessages()));
    } else if (command == "query") {
      std::string rest;
      std::getline(iss, rest);
      auto spec = kc::ParseQuery(rest);
      if (!spec.ok()) {
        std::printf("  parse error: %s\n", spec.status().ToString().c_str());
        continue;
      }
      auto result = fleet->server().EvaluateSpec(*spec, "adhoc");
      if (!result.ok()) {
        std::printf("  error: %s\n", result.status().ToString().c_str());
        continue;
      }
      PrintResult(*result);
    } else if (command == "add") {
      std::string name, rest;
      iss >> name;
      std::getline(iss, rest);
      auto spec = kc::ParseQuery(rest);
      if (!spec.ok()) {
        std::printf("  parse error: %s\n", spec.status().ToString().c_str());
        continue;
      }
      kc::Status added = fleet->server().AddQuery(name, *spec);
      std::printf("  %s\n", added.ok() ? ("registered " + name).c_str()
                                       : added.ToString().c_str());
    } else if (command == "eval") {
      std::string name;
      iss >> name;
      auto result = fleet->server().Evaluate(name);
      if (!result.ok()) {
        std::printf("  error: %s\n", result.status().ToString().c_str());
        continue;
      }
      PrintResult(*result);
    } else if (command == "due") {
      auto results = fleet->server().EvaluateDue();
      if (results.empty()) std::printf("  (nothing due)\n");
      for (const auto& r : results) PrintResult(r);
    } else if (command == "sources") {
      PrintSources(*fleet);
    } else if (command == "report") {
      std::printf("%s", kc::DescribeServer(fleet->server()).c_str());
    } else if (command == "stats") {
      std::printf("  ticks=%lld messages=%lld bytes=%lld (naive would be "
                  "%lld messages)\n",
                  static_cast<long long>(fleet->ticks()),
                  static_cast<long long>(fleet->TotalMessages()),
                  static_cast<long long>(fleet->TotalBytes()),
                  static_cast<long long>(fleet->ticks() * 4));
    } else {
      std::printf("  unknown command '%s'; try 'help'\n", command.c_str());
    }
  }
  std::printf("bye\n");
  return 0;
}
