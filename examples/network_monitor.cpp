// Network monitor: bursty traffic rates from router interfaces, threshold
// triggers under bounded uncertainty, and the resource-constrained mode.
//
// Demonstrates (a) the three-valued trigger answers a DSMS can give when
// its cached view carries an error bound, and (b) the BudgetController
// trading precision for a hard message budget on a hostile (bursty,
// heavy-tailed) stream — the direction of the paper's tradeoff that
// maximizes precision under fixed resources.

#include <cstdio>
#include <memory>

#include "net/channel.h"
#include "query/parser.h"
#include "server/server.h"
#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/budget.h"
#include "suppression/policies.h"

int main() {
  constexpr size_t kTicks = 20000;

  // Part 1: threshold trigger with bounded uncertainty. --------------------
  kc::BurstyTrafficGenerator::Config traffic;
  traffic.base_rate = 10.0;
  traffic.pareto_scale = 8.0;
  kc::BurstyTrafficGenerator gen(traffic);
  gen.Reset(1);

  kc::StreamServer server;
  (void)server.RegisterSource(0, kc::MakeDefaultKalmanPredictor(0.5, 0.25));
  kc::Channel channel;
  channel.SetReceiver([&server](const kc::Message& m) {
    (void)server.OnMessage(m);
  });
  kc::AgentConfig agent_config;
  agent_config.delta = 2.0;
  kc::SourceAgent agent(0, kc::MakeDefaultKalmanPredictor(0.5, 0.25),
                        agent_config, &channel);

  auto spec = kc::ParseQuery("SELECT VALUE(s0) WHEN > 25 WITHIN 2");
  if (!spec.ok() || !server.AddQuery("hot_link", *spec).ok()) {
    std::fprintf(stderr, "query setup failed\n");
    return 1;
  }

  int64_t yes = 0, maybe = 0, no = 0, true_over = 0, missed_definite = 0;
  for (size_t t = 0; t < kTicks; ++t) {
    kc::Sample s = gen.Next();
    server.Tick();
    if (!agent.Offer(s.measured).ok()) return 1;
    auto result = server.Evaluate("hot_link");
    if (!result.ok()) continue;
    switch (*result->trigger) {
      case kc::TriggerState::kYes:
        ++yes;
        break;
      case kc::TriggerState::kMaybe:
        ++maybe;
        break;
      case kc::TriggerState::kNo:
        ++no;
        break;
    }
    bool actually_over = s.truth.scalar() > 25.0;
    if (actually_over) ++true_over;
    // A definite NO while truly over threshold would be a soundness bug
    // (modulo the filter-smoothing semantics of the contract target).
    if (actually_over && *result->trigger == kc::TriggerState::kNo &&
        s.truth.scalar() > 25.0 + 2.0 * result->bound) {
      ++missed_definite;
    }
  }
  std::printf("network_monitor part 1: 'rate > 25' trigger over %zu ticks\n",
              kTicks);
  std::printf("  definite YES: %lld   MAYBE: %lld   definite NO: %lld\n",
              static_cast<long long>(yes), static_cast<long long>(maybe),
              static_cast<long long>(no));
  std::printf("  ticks truly over threshold: %lld;  confident misses: %lld\n",
              static_cast<long long>(true_over),
              static_cast<long long>(missed_definite));
  std::printf("  messages used: %lld (%.2f%% of naive streaming)\n\n",
              static_cast<long long>(channel.stats().messages_sent),
              100.0 * static_cast<double>(channel.stats().messages_sent) /
                  static_cast<double>(kTicks));

  // Part 2: hard message budget via the adaptive-delta controller. ---------
  // Run on a noisy drifting utilization signal (the KF's home turf); the
  // bursty stream above is its hardest case and is covered by bench E2/E3.
  std::printf("part 2: resource-constrained mode (budget: 1 message per 100 "
              "readings)\n");
  std::printf("%14s %12s %14s %16s\n", "policy", "messages", "rate",
              "rmse vs truth");
  for (const char* policy : {"value_cache", "kalman"}) {
    std::unique_ptr<kc::Predictor> proto;
    if (std::string(policy) == "value_cache") {
      proto = std::make_unique<kc::ValueCachePredictor>();
    } else {
      proto = kc::MakeDefaultKalmanPredictor(0.04, 1.0);
    }
    kc::LinkConfig config;
    config.ticks = kTicks;
    config.delta = 1.0;
    config.seed = 5;
    config.budget = kc::BudgetConfig{};
    config.budget->target_rate = 0.01;
    config.budget->window = 500;
    kc::RandomWalkGenerator::Config drift;
    drift.step_sigma = 0.2;
    kc::NoiseConfig sensor;
    sensor.gaussian_sigma = 1.0;
    kc::NoisyStream stream(std::make_unique<kc::RandomWalkGenerator>(drift),
                           sensor);
    kc::LinkReport report = kc::RunLink(stream, *proto, config);
    std::printf("%14s %12lld %14.4f %16.3f\n", policy,
                static_cast<long long>(report.messages),
                report.messages_per_tick, report.err_vs_truth.rms());
  }
  std::printf("\nUnder the same message budget the Kalman predictor converts "
              "its spare\nbudget into precision: comparable message rate, "
              "lower error against truth,\nbecause each message it does send "
              "carries a filtered state, not a noisy sample.\n");
  return 0;
}
