// Historical reanalysis: archive a stream's measurements, then answer a
// historical query with the RTS smoother instead of the forward filter.
//
// A stream server archives what sources ship anyway; when an analyst asks
// "what was the signal really doing last Tuesday?", fixed-interval
// smoothing over the archive reconstructs the past strictly better than
// the filtered estimates the dashboard showed live. This example measures
// that gap and demonstrates the trace CSV round trip that persistence
// would use.

#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "kalman/smoother.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "streams/trace.h"

int main() {
  // A day of noisy sensor readings.
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.15;
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 1.0;  // A very noisy sensor: smoothing shines.
  kc::NoisyStream stream(std::make_unique<kc::RandomWalkGenerator>(walk),
                         noise);

  constexpr size_t kTicks = 2000;
  std::vector<kc::Sample> archive = kc::Materialize(stream, kTicks, 2026);

  // Persist and reload the archive exactly as a server's trace store would.
  const std::string path = "/tmp/kalmancast_archive.csv";
  if (!kc::SaveTraceCsv(path, archive).ok()) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  auto reloaded = kc::LoadTraceCsv(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "failed to reload archive: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }

  // Forward filter (what the live dashboard showed) vs RTS smoother (the
  // reanalysis), both over the reloaded archive.
  kc::StateSpaceModel model = kc::MakeRandomWalkModel(
      walk.step_sigma * walk.step_sigma,
      noise.gaussian_sigma * noise.gaussian_sigma);
  std::vector<kc::Vector> observations;
  observations.reserve(reloaded->size());
  for (const kc::Sample& s : *reloaded) {
    observations.push_back(s.measured.value);
  }

  kc::KalmanFilter forward(model, kc::Vector{0.0}, kc::Matrix{{100.0}});
  std::vector<double> filtered;
  for (const kc::Vector& z : observations) {
    forward.Predict();
    if (!forward.Update(z).ok()) return 1;
    filtered.push_back(forward.state()[0]);
  }
  auto smoothed =
      kc::RtsSmooth(model, kc::Vector{0.0}, kc::Matrix{{100.0}}, observations);
  if (!smoothed.ok()) {
    std::fprintf(stderr, "smoothing failed: %s\n",
                 smoothed.status().ToString().c_str());
    return 1;
  }

  kc::RunningStats raw_err, filt_err, smooth_err;
  for (size_t k = 20; k + 20 < archive.size(); ++k) {
    double truth = archive[k].truth.scalar();
    raw_err.Add(archive[k].measured.scalar() - truth);
    filt_err.Add(filtered[k] - truth);
    smooth_err.Add((*smoothed)[k].x[0] - truth);
  }

  std::printf("historical_reanalysis: %zu archived readings "
              "(sensor sigma=%.1f)\n\n",
              kTicks, noise.gaussian_sigma);
  std::printf("%-26s %12s\n", "estimate", "rmse vs truth");
  std::printf("%-26s %12.3f\n", "raw archived measurements", raw_err.rms());
  std::printf("%-26s %12.3f\n", "forward filter (live view)", filt_err.rms());
  std::printf("%-26s %12.3f\n", "RTS smoother (reanalysis)", smooth_err.rms());
  std::printf("\nThe smoother uses future context the live filter never had; "
              "its interior-\npoint error is strictly lower, which is why "
              "the server runs it for\nhistorical queries over the "
              "correction archive.\n");
  std::remove(path.c_str());
  return 0;
}
