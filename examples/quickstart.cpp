// Quickstart: one noisy sensor, one server, three suppression policies.
//
// Demonstrates the library's core loop in ~60 lines of user code: build a
// stream, pick a predictor, run the link, and read the communication /
// accuracy report. This is the smallest end-to-end use of the public API.

#include <cstdio>
#include <memory>

#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "suppression/policies.h"

int main() {
  // A slowly drifting signal measured by a noisy sensor, 10k readings.
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.2;
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 0.5;
  kc::NoisyStream stream(std::make_unique<kc::RandomWalkGenerator>(walk),
                         noise);

  kc::LinkConfig config;
  config.ticks = 10000;
  config.delta = 1.0;  // The server's answers must stay within +/-1.0.
  config.seed = 42;

  std::printf("kalmancast quickstart: random walk + sensor noise, "
              "delta=%.1f, %zu ticks\n\n",
              config.delta, config.ticks);
  std::printf("%-14s %10s %12s %14s %14s\n", "policy", "messages", "bytes",
              "rmse vs truth", "violations");

  // Baseline 1: Olston-style value caching.
  kc::ValueCachePredictor value_cache;
  kc::LinkReport r1 = kc::RunLink(stream, value_cache, config);

  // Baseline 2: two-point dead reckoning.
  kc::LinearPredictor linear;
  kc::LinkReport r2 = kc::RunLink(stream, linear, config);

  // The paper's approach: a dual Kalman filter with adaptive process noise.
  auto kalman = kc::MakeDefaultKalmanPredictor(/*process_var=*/0.04,
                                               /*obs_var=*/0.25);
  kc::LinkReport r3 = kc::RunLink(stream, *kalman, config);

  for (const kc::LinkReport& r : {r1, r2, r3}) {
    std::printf("%-14s %10lld %12lld %14.3f %14lld\n", r.policy.c_str(),
                static_cast<long long>(r.messages),
                static_cast<long long>(r.bytes), r.err_vs_truth.rms(),
                static_cast<long long>(r.contract_violations));
  }

  double saving = 100.0 * (1.0 - static_cast<double>(r3.messages) /
                                     static_cast<double>(r1.messages));
  std::printf("\nThe Kalman predictor shipped %.1f%% fewer messages than "
              "value caching at the\nsame precision bound with comparable "
              "accuracy against the true signal:\nit predicts the clean "
              "signal instead of chasing every noisy reading.\n",
              saving);
  return 0;
}
