// trace_replay: run any suppression policy over a CSV trace file.
//
// This is the adoption path for real data: export your stream as a CSV
// with columns seq,time,truth_0..,meas_0.. (truth may simply repeat the
// measurement if unknown), then compare policies and precision bounds on
// *your* workload without writing any code.
//
// Usage:
//   trace_replay <trace.csv> [delta] [policy] [resample_dt]
//     policy: kalman (default) | kalman_cv | value_cache | linear | ewma
//     resample_dt: clean non-monotonic timestamps and interpolate the
//                  trace onto a uniform grid with this spacing
//
// With no arguments, generates and replays a demo trace end-to-end.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "server/simulation.h"
#include "streams/generators.h"
#include "streams/noise.h"
#include "streams/resample.h"
#include "streams/trace.h"
#include "suppression/policies.h"

namespace {

std::unique_ptr<kc::Predictor> MakePolicy(const std::string& name,
                                          size_t dims) {
  if (name == "value_cache") {
    return std::make_unique<kc::ValueCachePredictor>(dims);
  }
  if (name == "linear") return std::make_unique<kc::LinearPredictor>(dims);
  if (name == "ewma") return std::make_unique<kc::EwmaPredictor>(dims, 0.5);
  kc::KalmanPredictor::Config config;
  if (dims == 2) {
    config.model = kc::MakeConstantVelocity2DModel(1.0, 0.5, 1.0);
  } else if (name == "kalman_cv") {
    config.model = kc::MakeConstantVelocityModel(1.0, 0.05, 0.25);
  } else {
    config.model = kc::MakeRandomWalkModel(0.1, 0.25);
  }
  kc::AdaptiveConfig adaptive;
  adaptive.adapt_q = true;
  adaptive.adapt_r = true;  // Learn the trace's actual noise level.
  config.adaptive = adaptive;
  return std::make_unique<kc::KalmanPredictor>(std::move(config));
}

int Replay(const std::string& path, double delta, const std::string& policy,
           double resample_dt = 0.0) {
  auto trace = kc::LoadTraceCsv(path);
  if (!trace.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 trace.status().ToString().c_str());
    return 1;
  }
  if (resample_dt > 0.0) {
    size_t dropped = 0;
    auto cleaned = kc::DropNonMonotonic(*trace, &dropped);
    auto uniform = kc::ResampleTrace(cleaned, resample_dt);
    if (!uniform.ok()) {
      std::fprintf(stderr, "resample failed: %s\n",
                   uniform.status().ToString().c_str());
      return 1;
    }
    std::printf("resampled to dt=%g (%zu -> %zu samples, %zu dropped)\n",
                resample_dt, trace->size(), uniform->size(), dropped);
    *trace = std::move(*uniform);
  }
  kc::ReplayGenerator replay(*trace, path);
  auto proto = MakePolicy(policy, replay.dims());
  if (proto == nullptr) {
    std::fprintf(stderr, "unknown policy %s\n", policy.c_str());
    return 1;
  }

  kc::LinkConfig config;
  config.ticks = replay.size();
  config.delta = delta;
  kc::LinkReport report = kc::RunLink(replay, *proto, config);

  std::printf("trace:        %s (%zu samples, %zu-dim)\n", path.c_str(),
              replay.size(), replay.dims());
  std::printf("policy:       %s   delta: %g\n", report.policy.c_str(), delta);
  std::printf("messages:     %lld (%.2f%% of naive streaming)\n",
              static_cast<long long>(report.messages),
              100.0 * report.messages_per_tick);
  std::printf("bytes:        %lld\n", static_cast<long long>(report.bytes));
  std::printf("err vs meas:  mean %.4g  max %.4g\n",
              report.err_vs_measured.mean(), report.err_vs_measured.max());
  std::printf("err vs truth: rmse %.4g  max %.4g\n",
              report.err_vs_truth.rms(), report.err_vs_truth.max());
  std::printf("contract:     %lld violations against delta=%g\n",
              static_cast<long long>(report.contract_violations), delta);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    double delta = argc >= 3 ? std::atof(argv[2]) : 1.0;
    std::string policy = argc >= 4 ? argv[3] : "kalman";
    double resample_dt = argc >= 5 ? std::atof(argv[4]) : 0.0;
    return Replay(argv[1], delta, policy, resample_dt);
  }

  // Demo mode: build a trace, save it, replay it through two policies.
  std::printf("no trace given; running the self-demo\n");
  std::printf("usage: trace_replay <trace.csv> [delta] [policy]\n\n");
  kc::RandomWalkGenerator::Config walk;
  walk.step_sigma = 0.3;
  kc::NoiseConfig noise;
  noise.gaussian_sigma = 0.6;
  kc::NoisyStream stream(std::make_unique<kc::RandomWalkGenerator>(walk),
                         noise);
  auto trace = kc::Materialize(stream, 5000, 99);
  const std::string path = "/tmp/kalmancast_demo_trace.csv";
  if (!kc::SaveTraceCsv(path, trace).ok()) return 1;
  int rc = Replay(path, 1.0, "value_cache");
  std::printf("\n");
  rc |= Replay(path, 1.0, "kalman");
  std::remove(path.c_str());
  return rc;
}
