# Empty compiler generated dependencies file for cql_shell.
# This may be replaced when dependencies are built.
