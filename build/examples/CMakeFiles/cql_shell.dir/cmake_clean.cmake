file(REMOVE_RECURSE
  "CMakeFiles/cql_shell.dir/cql_shell.cpp.o"
  "CMakeFiles/cql_shell.dir/cql_shell.cpp.o.d"
  "cql_shell"
  "cql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
