# Empty dependencies file for historical_reanalysis.
# This may be replaced when dependencies are built.
