file(REMOVE_RECURSE
  "CMakeFiles/historical_reanalysis.dir/historical_reanalysis.cpp.o"
  "CMakeFiles/historical_reanalysis.dir/historical_reanalysis.cpp.o.d"
  "historical_reanalysis"
  "historical_reanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historical_reanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
