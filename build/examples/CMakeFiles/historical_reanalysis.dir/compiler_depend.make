# Empty compiler generated dependencies file for historical_reanalysis.
# This may be replaced when dependencies are built.
