file(REMOVE_RECURSE
  "../bench/bench_perf_linalg"
  "../bench/bench_perf_linalg.pdb"
  "CMakeFiles/bench_perf_linalg.dir/bench_perf_linalg.cc.o"
  "CMakeFiles/bench_perf_linalg.dir/bench_perf_linalg.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
