# Empty dependencies file for bench_perf_linalg.
# This may be replaced when dependencies are built.
