file(REMOVE_RECURSE
  "../bench/bench_e4_noise"
  "../bench/bench_e4_noise.pdb"
  "CMakeFiles/bench_e4_noise.dir/bench_e4_noise.cc.o"
  "CMakeFiles/bench_e4_noise.dir/bench_e4_noise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
