# Empty dependencies file for bench_e5_adaptation.
# This may be replaced when dependencies are built.
