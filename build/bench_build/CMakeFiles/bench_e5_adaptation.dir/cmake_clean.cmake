file(REMOVE_RECURSE
  "../bench/bench_e5_adaptation"
  "../bench/bench_e5_adaptation.pdb"
  "CMakeFiles/bench_e5_adaptation.dir/bench_e5_adaptation.cc.o"
  "CMakeFiles/bench_e5_adaptation.dir/bench_e5_adaptation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
