file(REMOVE_RECURSE
  "../bench/bench_perf_kalman"
  "../bench/bench_perf_kalman.pdb"
  "CMakeFiles/bench_perf_kalman.dir/bench_perf_kalman.cc.o"
  "CMakeFiles/bench_perf_kalman.dir/bench_perf_kalman.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_kalman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
