# Empty dependencies file for bench_perf_kalman.
# This may be replaced when dependencies are built.
