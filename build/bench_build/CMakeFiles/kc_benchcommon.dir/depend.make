# Empty dependencies file for kc_benchcommon.
# This may be replaced when dependencies are built.
