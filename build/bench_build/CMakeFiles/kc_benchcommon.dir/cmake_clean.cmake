file(REMOVE_RECURSE
  "CMakeFiles/kc_benchcommon.dir/common.cc.o"
  "CMakeFiles/kc_benchcommon.dir/common.cc.o.d"
  "libkc_benchcommon.a"
  "libkc_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
