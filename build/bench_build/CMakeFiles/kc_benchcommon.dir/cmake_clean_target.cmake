file(REMOVE_RECURSE
  "libkc_benchcommon.a"
)
