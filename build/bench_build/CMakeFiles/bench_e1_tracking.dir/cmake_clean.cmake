file(REMOVE_RECURSE
  "../bench/bench_e1_tracking"
  "../bench/bench_e1_tracking.pdb"
  "CMakeFiles/bench_e1_tracking.dir/bench_e1_tracking.cc.o"
  "CMakeFiles/bench_e1_tracking.dir/bench_e1_tracking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
