# Empty compiler generated dependencies file for bench_e1_tracking.
# This may be replaced when dependencies are built.
