file(REMOVE_RECURSE
  "../bench/bench_e2_synthetic_sweep"
  "../bench/bench_e2_synthetic_sweep.pdb"
  "CMakeFiles/bench_e2_synthetic_sweep.dir/bench_e2_synthetic_sweep.cc.o"
  "CMakeFiles/bench_e2_synthetic_sweep.dir/bench_e2_synthetic_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_synthetic_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
