# Empty dependencies file for bench_e2_synthetic_sweep.
# This may be replaced when dependencies are built.
