# Empty compiler generated dependencies file for bench_e13_imm.
# This may be replaced when dependencies are built.
