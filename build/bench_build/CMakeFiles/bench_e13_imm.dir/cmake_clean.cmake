file(REMOVE_RECURSE
  "../bench/bench_e13_imm"
  "../bench/bench_e13_imm.pdb"
  "CMakeFiles/bench_e13_imm.dir/bench_e13_imm.cc.o"
  "CMakeFiles/bench_e13_imm.dir/bench_e13_imm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_imm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
