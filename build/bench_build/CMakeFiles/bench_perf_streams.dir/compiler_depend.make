# Empty compiler generated dependencies file for bench_perf_streams.
# This may be replaced when dependencies are built.
