file(REMOVE_RECURSE
  "../bench/bench_perf_streams"
  "../bench/bench_perf_streams.pdb"
  "CMakeFiles/bench_perf_streams.dir/bench_perf_streams.cc.o"
  "CMakeFiles/bench_perf_streams.dir/bench_perf_streams.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
