# Empty compiler generated dependencies file for bench_e7_aggregates.
# This may be replaced when dependencies are built.
