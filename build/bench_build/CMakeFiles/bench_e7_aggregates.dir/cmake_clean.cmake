file(REMOVE_RECURSE
  "../bench/bench_e7_aggregates"
  "../bench/bench_e7_aggregates.pdb"
  "CMakeFiles/bench_e7_aggregates.dir/bench_e7_aggregates.cc.o"
  "CMakeFiles/bench_e7_aggregates.dir/bench_e7_aggregates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
