
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e7_aggregates.cc" "bench_build/CMakeFiles/bench_e7_aggregates.dir/bench_e7_aggregates.cc.o" "gcc" "bench_build/CMakeFiles/bench_e7_aggregates.dir/bench_e7_aggregates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/kc_benchcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/kc_query.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/kc_server.dir/DependInfo.cmake"
  "/root/repo/build/src/suppression/CMakeFiles/kc_suppression.dir/DependInfo.cmake"
  "/root/repo/build/src/kalman/CMakeFiles/kc_kalman.dir/DependInfo.cmake"
  "/root/repo/build/src/streams/CMakeFiles/kc_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/kc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
