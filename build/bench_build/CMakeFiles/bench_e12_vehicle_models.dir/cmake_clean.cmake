file(REMOVE_RECURSE
  "../bench/bench_e12_vehicle_models"
  "../bench/bench_e12_vehicle_models.pdb"
  "CMakeFiles/bench_e12_vehicle_models.dir/bench_e12_vehicle_models.cc.o"
  "CMakeFiles/bench_e12_vehicle_models.dir/bench_e12_vehicle_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_vehicle_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
