# Empty dependencies file for bench_e12_vehicle_models.
# This may be replaced when dependencies are built.
