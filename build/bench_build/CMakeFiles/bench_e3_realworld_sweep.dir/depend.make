# Empty dependencies file for bench_e3_realworld_sweep.
# This may be replaced when dependencies are built.
