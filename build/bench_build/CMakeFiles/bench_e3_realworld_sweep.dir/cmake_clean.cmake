file(REMOVE_RECURSE
  "../bench/bench_e3_realworld_sweep"
  "../bench/bench_e3_realworld_sweep.pdb"
  "CMakeFiles/bench_e3_realworld_sweep.dir/bench_e3_realworld_sweep.cc.o"
  "CMakeFiles/bench_e3_realworld_sweep.dir/bench_e3_realworld_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_realworld_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
