file(REMOVE_RECURSE
  "../bench/bench_e6_budget"
  "../bench/bench_e6_budget.pdb"
  "CMakeFiles/bench_e6_budget.dir/bench_e6_budget.cc.o"
  "CMakeFiles/bench_e6_budget.dir/bench_e6_budget.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
