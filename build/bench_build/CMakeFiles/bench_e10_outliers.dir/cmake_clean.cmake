file(REMOVE_RECURSE
  "../bench/bench_e10_outliers"
  "../bench/bench_e10_outliers.pdb"
  "CMakeFiles/bench_e10_outliers.dir/bench_e10_outliers.cc.o"
  "CMakeFiles/bench_e10_outliers.dir/bench_e10_outliers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
