# Empty dependencies file for bench_e10_outliers.
# This may be replaced when dependencies are built.
