file(REMOVE_RECURSE
  "../bench/bench_e14_triggers"
  "../bench/bench_e14_triggers.pdb"
  "CMakeFiles/bench_e14_triggers.dir/bench_e14_triggers.cc.o"
  "CMakeFiles/bench_e14_triggers.dir/bench_e14_triggers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
