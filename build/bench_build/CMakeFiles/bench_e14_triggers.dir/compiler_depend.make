# Empty compiler generated dependencies file for bench_e14_triggers.
# This may be replaced when dependencies are built.
