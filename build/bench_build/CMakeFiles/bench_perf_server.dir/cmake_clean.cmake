file(REMOVE_RECURSE
  "../bench/bench_perf_server"
  "../bench/bench_perf_server.pdb"
  "CMakeFiles/bench_perf_server.dir/bench_perf_server.cc.o"
  "CMakeFiles/bench_perf_server.dir/bench_perf_server.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
