# Empty dependencies file for bench_perf_server.
# This may be replaced when dependencies are built.
