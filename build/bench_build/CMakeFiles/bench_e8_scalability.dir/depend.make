# Empty dependencies file for bench_e8_scalability.
# This may be replaced when dependencies are built.
