file(REMOVE_RECURSE
  "../bench/bench_e9_ablations"
  "../bench/bench_e9_ablations.pdb"
  "CMakeFiles/bench_e9_ablations.dir/bench_e9_ablations.cc.o"
  "CMakeFiles/bench_e9_ablations.dir/bench_e9_ablations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
