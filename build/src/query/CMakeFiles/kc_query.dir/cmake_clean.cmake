file(REMOVE_RECURSE
  "CMakeFiles/kc_query.dir/lexer.cc.o"
  "CMakeFiles/kc_query.dir/lexer.cc.o.d"
  "CMakeFiles/kc_query.dir/parser.cc.o"
  "CMakeFiles/kc_query.dir/parser.cc.o.d"
  "libkc_query.a"
  "libkc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
