file(REMOVE_RECURSE
  "libkc_query.a"
)
