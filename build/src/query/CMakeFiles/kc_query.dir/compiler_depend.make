# Empty compiler generated dependencies file for kc_query.
# This may be replaced when dependencies are built.
