# Empty dependencies file for kc_common.
# This may be replaced when dependencies are built.
