file(REMOVE_RECURSE
  "libkc_common.a"
)
