file(REMOVE_RECURSE
  "CMakeFiles/kc_common.dir/chisq.cc.o"
  "CMakeFiles/kc_common.dir/chisq.cc.o.d"
  "CMakeFiles/kc_common.dir/logging.cc.o"
  "CMakeFiles/kc_common.dir/logging.cc.o.d"
  "CMakeFiles/kc_common.dir/rng.cc.o"
  "CMakeFiles/kc_common.dir/rng.cc.o.d"
  "CMakeFiles/kc_common.dir/stats.cc.o"
  "CMakeFiles/kc_common.dir/stats.cc.o.d"
  "CMakeFiles/kc_common.dir/status.cc.o"
  "CMakeFiles/kc_common.dir/status.cc.o.d"
  "CMakeFiles/kc_common.dir/strings.cc.o"
  "CMakeFiles/kc_common.dir/strings.cc.o.d"
  "libkc_common.a"
  "libkc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
