file(REMOVE_RECURSE
  "CMakeFiles/kc_server.dir/allocation.cc.o"
  "CMakeFiles/kc_server.dir/allocation.cc.o.d"
  "CMakeFiles/kc_server.dir/archive.cc.o"
  "CMakeFiles/kc_server.dir/archive.cc.o.d"
  "CMakeFiles/kc_server.dir/query.cc.o"
  "CMakeFiles/kc_server.dir/query.cc.o.d"
  "CMakeFiles/kc_server.dir/report.cc.o"
  "CMakeFiles/kc_server.dir/report.cc.o.d"
  "CMakeFiles/kc_server.dir/server.cc.o"
  "CMakeFiles/kc_server.dir/server.cc.o.d"
  "CMakeFiles/kc_server.dir/simulation.cc.o"
  "CMakeFiles/kc_server.dir/simulation.cc.o.d"
  "CMakeFiles/kc_server.dir/snapshot.cc.o"
  "CMakeFiles/kc_server.dir/snapshot.cc.o.d"
  "CMakeFiles/kc_server.dir/volatility.cc.o"
  "CMakeFiles/kc_server.dir/volatility.cc.o.d"
  "libkc_server.a"
  "libkc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
