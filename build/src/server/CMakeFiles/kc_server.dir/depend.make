# Empty dependencies file for kc_server.
# This may be replaced when dependencies are built.
