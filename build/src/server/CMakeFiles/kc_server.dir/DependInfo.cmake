
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/allocation.cc" "src/server/CMakeFiles/kc_server.dir/allocation.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/allocation.cc.o.d"
  "/root/repo/src/server/archive.cc" "src/server/CMakeFiles/kc_server.dir/archive.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/archive.cc.o.d"
  "/root/repo/src/server/query.cc" "src/server/CMakeFiles/kc_server.dir/query.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/query.cc.o.d"
  "/root/repo/src/server/report.cc" "src/server/CMakeFiles/kc_server.dir/report.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/report.cc.o.d"
  "/root/repo/src/server/server.cc" "src/server/CMakeFiles/kc_server.dir/server.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/server.cc.o.d"
  "/root/repo/src/server/simulation.cc" "src/server/CMakeFiles/kc_server.dir/simulation.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/simulation.cc.o.d"
  "/root/repo/src/server/snapshot.cc" "src/server/CMakeFiles/kc_server.dir/snapshot.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/snapshot.cc.o.d"
  "/root/repo/src/server/volatility.cc" "src/server/CMakeFiles/kc_server.dir/volatility.cc.o" "gcc" "src/server/CMakeFiles/kc_server.dir/volatility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suppression/CMakeFiles/kc_suppression.dir/DependInfo.cmake"
  "/root/repo/build/src/kalman/CMakeFiles/kc_kalman.dir/DependInfo.cmake"
  "/root/repo/build/src/streams/CMakeFiles/kc_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/kc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
