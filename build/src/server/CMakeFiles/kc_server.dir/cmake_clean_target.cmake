file(REMOVE_RECURSE
  "libkc_server.a"
)
