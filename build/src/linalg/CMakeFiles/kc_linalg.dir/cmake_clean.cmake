file(REMOVE_RECURSE
  "CMakeFiles/kc_linalg.dir/decomp.cc.o"
  "CMakeFiles/kc_linalg.dir/decomp.cc.o.d"
  "CMakeFiles/kc_linalg.dir/matrix.cc.o"
  "CMakeFiles/kc_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/kc_linalg.dir/vector.cc.o"
  "CMakeFiles/kc_linalg.dir/vector.cc.o.d"
  "libkc_linalg.a"
  "libkc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
