# Empty compiler generated dependencies file for kc_linalg.
# This may be replaced when dependencies are built.
