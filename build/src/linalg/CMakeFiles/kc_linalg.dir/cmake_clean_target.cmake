file(REMOVE_RECURSE
  "libkc_linalg.a"
)
