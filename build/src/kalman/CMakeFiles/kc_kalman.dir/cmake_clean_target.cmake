file(REMOVE_RECURSE
  "libkc_kalman.a"
)
