# Empty dependencies file for kc_kalman.
# This may be replaced when dependencies are built.
