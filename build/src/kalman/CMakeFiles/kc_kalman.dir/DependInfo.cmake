
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kalman/adaptive.cc" "src/kalman/CMakeFiles/kc_kalman.dir/adaptive.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/adaptive.cc.o.d"
  "/root/repo/src/kalman/ekf.cc" "src/kalman/CMakeFiles/kc_kalman.dir/ekf.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/ekf.cc.o.d"
  "/root/repo/src/kalman/imm.cc" "src/kalman/CMakeFiles/kc_kalman.dir/imm.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/imm.cc.o.d"
  "/root/repo/src/kalman/kalman_filter.cc" "src/kalman/CMakeFiles/kc_kalman.dir/kalman_filter.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/kalman_filter.cc.o.d"
  "/root/repo/src/kalman/model.cc" "src/kalman/CMakeFiles/kc_kalman.dir/model.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/model.cc.o.d"
  "/root/repo/src/kalman/model_bank.cc" "src/kalman/CMakeFiles/kc_kalman.dir/model_bank.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/model_bank.cc.o.d"
  "/root/repo/src/kalman/riccati.cc" "src/kalman/CMakeFiles/kc_kalman.dir/riccati.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/riccati.cc.o.d"
  "/root/repo/src/kalman/smoother.cc" "src/kalman/CMakeFiles/kc_kalman.dir/smoother.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/smoother.cc.o.d"
  "/root/repo/src/kalman/ukf.cc" "src/kalman/CMakeFiles/kc_kalman.dir/ukf.cc.o" "gcc" "src/kalman/CMakeFiles/kc_kalman.dir/ukf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/kc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
