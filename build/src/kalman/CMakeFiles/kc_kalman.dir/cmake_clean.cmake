file(REMOVE_RECURSE
  "CMakeFiles/kc_kalman.dir/adaptive.cc.o"
  "CMakeFiles/kc_kalman.dir/adaptive.cc.o.d"
  "CMakeFiles/kc_kalman.dir/ekf.cc.o"
  "CMakeFiles/kc_kalman.dir/ekf.cc.o.d"
  "CMakeFiles/kc_kalman.dir/imm.cc.o"
  "CMakeFiles/kc_kalman.dir/imm.cc.o.d"
  "CMakeFiles/kc_kalman.dir/kalman_filter.cc.o"
  "CMakeFiles/kc_kalman.dir/kalman_filter.cc.o.d"
  "CMakeFiles/kc_kalman.dir/model.cc.o"
  "CMakeFiles/kc_kalman.dir/model.cc.o.d"
  "CMakeFiles/kc_kalman.dir/model_bank.cc.o"
  "CMakeFiles/kc_kalman.dir/model_bank.cc.o.d"
  "CMakeFiles/kc_kalman.dir/riccati.cc.o"
  "CMakeFiles/kc_kalman.dir/riccati.cc.o.d"
  "CMakeFiles/kc_kalman.dir/smoother.cc.o"
  "CMakeFiles/kc_kalman.dir/smoother.cc.o.d"
  "CMakeFiles/kc_kalman.dir/ukf.cc.o"
  "CMakeFiles/kc_kalman.dir/ukf.cc.o.d"
  "libkc_kalman.a"
  "libkc_kalman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_kalman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
