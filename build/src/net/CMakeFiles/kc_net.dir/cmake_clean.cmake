file(REMOVE_RECURSE
  "CMakeFiles/kc_net.dir/channel.cc.o"
  "CMakeFiles/kc_net.dir/channel.cc.o.d"
  "CMakeFiles/kc_net.dir/message.cc.o"
  "CMakeFiles/kc_net.dir/message.cc.o.d"
  "libkc_net.a"
  "libkc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
