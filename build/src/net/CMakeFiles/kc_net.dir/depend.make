# Empty dependencies file for kc_net.
# This may be replaced when dependencies are built.
