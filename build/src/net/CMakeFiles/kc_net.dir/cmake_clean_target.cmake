file(REMOVE_RECURSE
  "libkc_net.a"
)
