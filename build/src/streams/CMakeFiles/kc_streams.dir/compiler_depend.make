# Empty compiler generated dependencies file for kc_streams.
# This may be replaced when dependencies are built.
