file(REMOVE_RECURSE
  "libkc_streams.a"
)
