file(REMOVE_RECURSE
  "CMakeFiles/kc_streams.dir/composite.cc.o"
  "CMakeFiles/kc_streams.dir/composite.cc.o.d"
  "CMakeFiles/kc_streams.dir/generators.cc.o"
  "CMakeFiles/kc_streams.dir/generators.cc.o.d"
  "CMakeFiles/kc_streams.dir/noise.cc.o"
  "CMakeFiles/kc_streams.dir/noise.cc.o.d"
  "CMakeFiles/kc_streams.dir/reading.cc.o"
  "CMakeFiles/kc_streams.dir/reading.cc.o.d"
  "CMakeFiles/kc_streams.dir/resample.cc.o"
  "CMakeFiles/kc_streams.dir/resample.cc.o.d"
  "CMakeFiles/kc_streams.dir/trace.cc.o"
  "CMakeFiles/kc_streams.dir/trace.cc.o.d"
  "libkc_streams.a"
  "libkc_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
