
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streams/composite.cc" "src/streams/CMakeFiles/kc_streams.dir/composite.cc.o" "gcc" "src/streams/CMakeFiles/kc_streams.dir/composite.cc.o.d"
  "/root/repo/src/streams/generators.cc" "src/streams/CMakeFiles/kc_streams.dir/generators.cc.o" "gcc" "src/streams/CMakeFiles/kc_streams.dir/generators.cc.o.d"
  "/root/repo/src/streams/noise.cc" "src/streams/CMakeFiles/kc_streams.dir/noise.cc.o" "gcc" "src/streams/CMakeFiles/kc_streams.dir/noise.cc.o.d"
  "/root/repo/src/streams/reading.cc" "src/streams/CMakeFiles/kc_streams.dir/reading.cc.o" "gcc" "src/streams/CMakeFiles/kc_streams.dir/reading.cc.o.d"
  "/root/repo/src/streams/resample.cc" "src/streams/CMakeFiles/kc_streams.dir/resample.cc.o" "gcc" "src/streams/CMakeFiles/kc_streams.dir/resample.cc.o.d"
  "/root/repo/src/streams/trace.cc" "src/streams/CMakeFiles/kc_streams.dir/trace.cc.o" "gcc" "src/streams/CMakeFiles/kc_streams.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/kc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
