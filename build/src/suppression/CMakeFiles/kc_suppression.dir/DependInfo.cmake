
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suppression/agent.cc" "src/suppression/CMakeFiles/kc_suppression.dir/agent.cc.o" "gcc" "src/suppression/CMakeFiles/kc_suppression.dir/agent.cc.o.d"
  "/root/repo/src/suppression/budget.cc" "src/suppression/CMakeFiles/kc_suppression.dir/budget.cc.o" "gcc" "src/suppression/CMakeFiles/kc_suppression.dir/budget.cc.o.d"
  "/root/repo/src/suppression/ekf_policy.cc" "src/suppression/CMakeFiles/kc_suppression.dir/ekf_policy.cc.o" "gcc" "src/suppression/CMakeFiles/kc_suppression.dir/ekf_policy.cc.o.d"
  "/root/repo/src/suppression/imm_policy.cc" "src/suppression/CMakeFiles/kc_suppression.dir/imm_policy.cc.o" "gcc" "src/suppression/CMakeFiles/kc_suppression.dir/imm_policy.cc.o.d"
  "/root/repo/src/suppression/policies.cc" "src/suppression/CMakeFiles/kc_suppression.dir/policies.cc.o" "gcc" "src/suppression/CMakeFiles/kc_suppression.dir/policies.cc.o.d"
  "/root/repo/src/suppression/replica.cc" "src/suppression/CMakeFiles/kc_suppression.dir/replica.cc.o" "gcc" "src/suppression/CMakeFiles/kc_suppression.dir/replica.cc.o.d"
  "/root/repo/src/suppression/ukf_policy.cc" "src/suppression/CMakeFiles/kc_suppression.dir/ukf_policy.cc.o" "gcc" "src/suppression/CMakeFiles/kc_suppression.dir/ukf_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kalman/CMakeFiles/kc_kalman.dir/DependInfo.cmake"
  "/root/repo/build/src/streams/CMakeFiles/kc_streams.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/kc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
