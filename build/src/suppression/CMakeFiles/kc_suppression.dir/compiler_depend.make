# Empty compiler generated dependencies file for kc_suppression.
# This may be replaced when dependencies are built.
