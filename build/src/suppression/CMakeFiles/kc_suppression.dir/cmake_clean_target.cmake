file(REMOVE_RECURSE
  "libkc_suppression.a"
)
