file(REMOVE_RECURSE
  "CMakeFiles/kc_suppression.dir/agent.cc.o"
  "CMakeFiles/kc_suppression.dir/agent.cc.o.d"
  "CMakeFiles/kc_suppression.dir/budget.cc.o"
  "CMakeFiles/kc_suppression.dir/budget.cc.o.d"
  "CMakeFiles/kc_suppression.dir/ekf_policy.cc.o"
  "CMakeFiles/kc_suppression.dir/ekf_policy.cc.o.d"
  "CMakeFiles/kc_suppression.dir/imm_policy.cc.o"
  "CMakeFiles/kc_suppression.dir/imm_policy.cc.o.d"
  "CMakeFiles/kc_suppression.dir/policies.cc.o"
  "CMakeFiles/kc_suppression.dir/policies.cc.o.d"
  "CMakeFiles/kc_suppression.dir/replica.cc.o"
  "CMakeFiles/kc_suppression.dir/replica.cc.o.d"
  "CMakeFiles/kc_suppression.dir/ukf_policy.cc.o"
  "CMakeFiles/kc_suppression.dir/ukf_policy.cc.o.d"
  "libkc_suppression.a"
  "libkc_suppression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
