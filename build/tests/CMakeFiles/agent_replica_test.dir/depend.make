# Empty dependencies file for agent_replica_test.
# This may be replaced when dependencies are built.
