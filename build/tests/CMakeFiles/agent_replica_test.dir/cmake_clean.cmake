file(REMOVE_RECURSE
  "CMakeFiles/agent_replica_test.dir/agent_replica_test.cc.o"
  "CMakeFiles/agent_replica_test.dir/agent_replica_test.cc.o.d"
  "agent_replica_test"
  "agent_replica_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
