# Empty compiler generated dependencies file for chisq_test.
# This may be replaced when dependencies are built.
