file(REMOVE_RECURSE
  "CMakeFiles/chisq_test.dir/chisq_test.cc.o"
  "CMakeFiles/chisq_test.dir/chisq_test.cc.o.d"
  "chisq_test"
  "chisq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
