# Empty dependencies file for ekf_policy_test.
# This may be replaced when dependencies are built.
