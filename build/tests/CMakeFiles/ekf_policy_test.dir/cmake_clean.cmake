file(REMOVE_RECURSE
  "CMakeFiles/ekf_policy_test.dir/ekf_policy_test.cc.o"
  "CMakeFiles/ekf_policy_test.dir/ekf_policy_test.cc.o.d"
  "ekf_policy_test"
  "ekf_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekf_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
