file(REMOVE_RECURSE
  "CMakeFiles/imm_policy_test.dir/imm_policy_test.cc.o"
  "CMakeFiles/imm_policy_test.dir/imm_policy_test.cc.o.d"
  "imm_policy_test"
  "imm_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imm_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
