# Empty compiler generated dependencies file for imm_policy_test.
# This may be replaced when dependencies are built.
