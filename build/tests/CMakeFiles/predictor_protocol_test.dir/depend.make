# Empty dependencies file for predictor_protocol_test.
# This may be replaced when dependencies are built.
