file(REMOVE_RECURSE
  "CMakeFiles/predictor_protocol_test.dir/predictor_protocol_test.cc.o"
  "CMakeFiles/predictor_protocol_test.dir/predictor_protocol_test.cc.o.d"
  "predictor_protocol_test"
  "predictor_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
