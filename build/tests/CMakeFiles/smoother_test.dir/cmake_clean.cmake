file(REMOVE_RECURSE
  "CMakeFiles/smoother_test.dir/smoother_test.cc.o"
  "CMakeFiles/smoother_test.dir/smoother_test.cc.o.d"
  "smoother_test"
  "smoother_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoother_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
