# Empty compiler generated dependencies file for model_bank_test.
# This may be replaced when dependencies are built.
