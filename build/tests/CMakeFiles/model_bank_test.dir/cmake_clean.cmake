file(REMOVE_RECURSE
  "CMakeFiles/model_bank_test.dir/model_bank_test.cc.o"
  "CMakeFiles/model_bank_test.dir/model_bank_test.cc.o.d"
  "model_bank_test"
  "model_bank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
