file(REMOVE_RECURSE
  "CMakeFiles/contract_property_test.dir/contract_property_test.cc.o"
  "CMakeFiles/contract_property_test.dir/contract_property_test.cc.o.d"
  "contract_property_test"
  "contract_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
