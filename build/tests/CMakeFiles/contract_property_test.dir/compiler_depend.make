# Empty compiler generated dependencies file for contract_property_test.
# This may be replaced when dependencies are built.
