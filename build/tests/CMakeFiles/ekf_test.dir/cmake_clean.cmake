file(REMOVE_RECURSE
  "CMakeFiles/ekf_test.dir/ekf_test.cc.o"
  "CMakeFiles/ekf_test.dir/ekf_test.cc.o.d"
  "ekf_test"
  "ekf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
