file(REMOVE_RECURSE
  "CMakeFiles/ukf_test.dir/ukf_test.cc.o"
  "CMakeFiles/ukf_test.dir/ukf_test.cc.o.d"
  "ukf_test"
  "ukf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ukf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
