# Empty dependencies file for ukf_test.
# This may be replaced when dependencies are built.
