file(REMOVE_RECURSE
  "CMakeFiles/imm_test.dir/imm_test.cc.o"
  "CMakeFiles/imm_test.dir/imm_test.cc.o.d"
  "imm_test"
  "imm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
