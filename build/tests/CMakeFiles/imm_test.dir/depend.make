# Empty dependencies file for imm_test.
# This may be replaced when dependencies are built.
