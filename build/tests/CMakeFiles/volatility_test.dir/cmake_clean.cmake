file(REMOVE_RECURSE
  "CMakeFiles/volatility_test.dir/volatility_test.cc.o"
  "CMakeFiles/volatility_test.dir/volatility_test.cc.o.d"
  "volatility_test"
  "volatility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volatility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
