# Empty compiler generated dependencies file for volatility_test.
# This may be replaced when dependencies are built.
